#include "util/thread_pool.h"

#include <algorithm>

namespace faascache {

ThreadPool::ThreadPool(std::size_t threads)
{
    if (threads == 0)
        threads = defaultConcurrency();
    workers_.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i)
        workers_.emplace_back([this]() { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        shutting_down_ = true;
    }
    cv_.notify_all();
    for (std::thread& worker : workers_)
        worker.join();
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock,
                     [this]() { return shutting_down_ || !tasks_.empty(); });
            if (tasks_.empty())
                return;  // shutting down and drained
            task = std::move(tasks_.front());
            tasks_.pop_front();
        }
        task();
    }
}

std::size_t
ThreadPool::defaultConcurrency()
{
    return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

}  // namespace faascache

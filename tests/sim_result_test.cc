#include "sim/sim_result.h"

#include <gtest/gtest.h>

namespace faascache {
namespace {

TEST(SimResult, EmptyResultSafeRatios)
{
    SimResult r;
    EXPECT_EQ(r.coldStartFraction(), 0.0);
    EXPECT_EQ(r.execTimeIncreasePercent(), 0.0);
    EXPECT_EQ(r.dropFraction(), 0.0);
    EXPECT_EQ(r.meanMemoryUsage(), 0.0);
}

TEST(SimResult, ColdStartFraction)
{
    SimResult r;
    r.warm_starts = 3;
    r.cold_starts = 1;
    EXPECT_NEAR(r.coldStartFraction(), 0.25, 1e-12);
    EXPECT_NEAR(r.coldStartPercent(), 25.0, 1e-12);
}

TEST(SimResult, DropFractionIncludesServed)
{
    SimResult r;
    r.warm_starts = 6;
    r.cold_starts = 2;
    r.dropped = 2;
    EXPECT_NEAR(r.dropFraction(), 0.2, 1e-12);
    EXPECT_EQ(r.total(), 10);
}

TEST(SimResult, ExecIncreasePercent)
{
    SimResult r;
    r.baseline_exec_us = 1'000'000;
    r.actual_exec_us = 1'500'000;
    EXPECT_NEAR(r.execTimeIncreasePercent(), 50.0, 1e-12);
}

TEST(SimResult, MeanMemoryTimeWeighted)
{
    SimResult r;
    r.memory_usage = {{0, 100.0}, {10, 100.0}, {20, 300.0}, {30, 300.0}};
    // Weighted by the interval each sample value is held: 100 for 20 us
    // (two intervals), 300 for 10 us.
    EXPECT_NEAR(r.meanMemoryUsage(), (100.0 * 20 + 300.0 * 10) / 30.0,
                1e-9);
}

TEST(SimResult, MeanMemorySingleSample)
{
    SimResult r;
    r.memory_usage = {{0, 42.0}};
    EXPECT_DOUBLE_EQ(r.meanMemoryUsage(), 42.0);
}

TEST(FunctionOutcome, ServedSum)
{
    FunctionOutcome f;
    f.warm = 2;
    f.cold = 3;
    EXPECT_EQ(f.served(), 5);
}

}  // namespace
}  // namespace faascache

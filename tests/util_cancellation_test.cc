// The cooperative cancellation latch under the sweep watchdog and the
// bench signal handlers: one-way state, first-reason-wins, checkpoint
// throws, and the RAII SIGINT/SIGTERM hookup.
#include "util/cancellation.h"

#include <gtest/gtest.h>

#include <csignal>
#include <string>
#include <thread>
#include <vector>

namespace faascache {
namespace {

TEST(CancellationToken, StartsUncancelled)
{
    CancellationToken token;
    EXPECT_FALSE(token.cancelled());
    EXPECT_EQ(token.reason(), CancelReason::None);
    token.throwIfCancelled();  // must be a no-op
}

TEST(CancellationToken, CancelLatchesReason)
{
    CancellationToken token;
    token.cancel(CancelReason::Deadline);
    EXPECT_TRUE(token.cancelled());
    EXPECT_EQ(token.reason(), CancelReason::Deadline);
}

TEST(CancellationToken, FirstReasonWins)
{
    CancellationToken token;
    token.cancel(CancelReason::Signal);
    token.cancel(CancelReason::Deadline);
    token.cancel(CancelReason::Manual);
    EXPECT_EQ(token.reason(), CancelReason::Signal);
}

TEST(CancellationToken, ThrowIfCancelledCarriesReason)
{
    CancellationToken token;
    token.cancel(CancelReason::Deadline);
    try {
        token.throwIfCancelled();
        FAIL() << "expected CancelledError";
    } catch (const CancelledError& e) {
        EXPECT_EQ(e.reason(), CancelReason::Deadline);
        EXPECT_NE(std::string(e.what()).find("deadline"),
                  std::string::npos);
    }
}

TEST(CancellationToken, ConcurrentCancelKeepsOneReason)
{
    // Many racing cancellers: exactly one reason is recorded and the
    // token never reads as uncancelled afterwards.
    CancellationToken token;
    std::vector<std::thread> threads;
    for (int i = 0; i < 8; ++i) {
        threads.emplace_back([&token, i]() {
            token.cancel(i % 2 == 0 ? CancelReason::Manual
                                    : CancelReason::Deadline);
        });
    }
    for (std::thread& t : threads)
        t.join();
    EXPECT_TRUE(token.cancelled());
    const CancelReason reason = token.reason();
    EXPECT_TRUE(reason == CancelReason::Manual ||
                reason == CancelReason::Deadline);
}

TEST(CancelReasonName, NamesEveryReason)
{
    EXPECT_STREQ(cancelReasonName(CancelReason::None), "none");
    EXPECT_STREQ(cancelReasonName(CancelReason::Manual), "cancelled");
    EXPECT_STREQ(cancelReasonName(CancelReason::Deadline),
                 "deadline exceeded");
    EXPECT_STREQ(cancelReasonName(CancelReason::Signal),
                 "interrupted by signal");
}

TEST(ScopedSignalCancellation, SigtermCancelsBoundToken)
{
    CancellationToken token;
    {
        ScopedSignalCancellation scope(token);
        std::raise(SIGTERM);
        EXPECT_TRUE(token.cancelled());
        EXPECT_EQ(token.reason(), CancelReason::Signal);
        EXPECT_EQ(ScopedSignalCancellation::lastSignal(), SIGTERM);
    }
}

TEST(ScopedSignalCancellation, ReinstallableAfterScopeEnds)
{
    // The previous handlers are restored on destruction, so a second
    // scope (a second sweep in the same process) works the same way.
    CancellationToken token;
    {
        ScopedSignalCancellation scope(token);
        std::raise(SIGINT);
        EXPECT_EQ(token.reason(), CancelReason::Signal);
        EXPECT_EQ(ScopedSignalCancellation::lastSignal(), SIGINT);
    }
    CancellationToken second;
    {
        ScopedSignalCancellation scope(second);
        EXPECT_FALSE(second.cancelled());
        std::raise(SIGTERM);
        EXPECT_TRUE(second.cancelled());
    }
}

}  // namespace
}  // namespace faascache

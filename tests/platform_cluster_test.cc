#include "platform/cluster.h"

#include <gtest/gtest.h>

#include "platform/load_generator.h"

namespace faascache {
namespace {

ClusterConfig
config(LoadBalancing balancing, std::size_t servers = 4)
{
    ClusterConfig c;
    c.num_servers = servers;
    c.server.cores = 4;
    c.server.memory_mb = 512;
    c.balancing = balancing;
    return c;
}

TEST(Cluster, AllInvocationsAccountedFor)
{
    const Trace t = skewedFrequencyWorkload(10 * kMinute);
    for (LoadBalancing lb : {LoadBalancing::Random,
                             LoadBalancing::RoundRobin,
                             LoadBalancing::FunctionHash}) {
        const ClusterResult r =
            runCluster(t, PolicyKind::GreedyDual, config(lb));
        std::int64_t total = 0;
        for (const auto& s : r.servers)
            total += s.total();
        EXPECT_EQ(total,
                  static_cast<std::int64_t>(t.invocations().size()));
    }
}

TEST(Cluster, FunctionHashPinsFunctions)
{
    const Trace t = skewedFrequencyWorkload(10 * kMinute);
    const ClusterResult r = runCluster(
        t, PolicyKind::GreedyDual, config(LoadBalancing::FunctionHash));
    // Each function's invocations land on exactly one server.
    for (FunctionId fn = 0; fn < t.functions().size(); ++fn) {
        int servers_touched = 0;
        for (const auto& s : r.servers) {
            if (s.per_function[fn].served() + s.per_function[fn].dropped >
                0) {
                ++servers_touched;
            }
        }
        EXPECT_LE(servers_touched, 1) << "function " << fn;
    }
}

TEST(Cluster, RoundRobinSpreadsEvenly)
{
    const Trace t = skewedFrequencyWorkload(10 * kMinute);
    const ClusterResult r = runCluster(
        t, PolicyKind::GreedyDual, config(LoadBalancing::RoundRobin));
    const auto expected = static_cast<double>(t.invocations().size()) /
        static_cast<double>(r.servers.size());
    for (const auto& s : r.servers)
        EXPECT_NEAR(static_cast<double>(s.total()), expected, 1.0);
}

TEST(Cluster, LocalityImprovesWarmRatio)
{
    // The §9 claim: function-affine balancing concentrates temporal
    // locality and beats random spreading for keep-alive.
    const Trace t = skewedFrequencyWorkload(30 * kMinute);
    const ClusterResult affine = runCluster(
        t, PolicyKind::GreedyDual, config(LoadBalancing::FunctionHash));
    const ClusterResult random = runCluster(
        t, PolicyKind::GreedyDual, config(LoadBalancing::Random));
    EXPECT_GT(affine.warmPercent(), random.warmPercent());
}

TEST(Cluster, Deterministic)
{
    const Trace t = skewedFrequencyWorkload(5 * kMinute);
    const ClusterResult a = runCluster(t, PolicyKind::GreedyDual,
                                       config(LoadBalancing::Random));
    const ClusterResult b = runCluster(t, PolicyKind::GreedyDual,
                                       config(LoadBalancing::Random));
    EXPECT_EQ(a.warmStarts(), b.warmStarts());
    EXPECT_EQ(a.coldStarts(), b.coldStarts());
}

TEST(Cluster, RejectsZeroServers)
{
    const Trace t = skewedFrequencyWorkload(kMinute);
    ClusterConfig c = config(LoadBalancing::Random);
    c.num_servers = 0;
    EXPECT_THROW(runCluster(t, PolicyKind::GreedyDual, c),
                 std::invalid_argument);
}

TEST(Cluster, AggregateHelpers)
{
    ClusterResult r;
    PlatformResult s1, s2;
    s1.warm_starts = 10;
    s1.cold_starts = 5;
    s1.latencies_sec = {1.0, 2.0};
    s2.warm_starts = 20;
    s2.cold_starts = 5;
    s2.dropped_timeout = 3;
    s2.latencies_sec = {3.0};
    r.servers = {s1, s2};
    EXPECT_EQ(r.warmStarts(), 30);
    EXPECT_EQ(r.coldStarts(), 10);
    EXPECT_EQ(r.dropped(), 3);
    EXPECT_DOUBLE_EQ(r.warmPercent(), 75.0);
    EXPECT_DOUBLE_EQ(r.meanLatencySec(), 2.0);
}

}  // namespace
}  // namespace faascache

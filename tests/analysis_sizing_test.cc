#include "analysis/sizing.h"

#include <gtest/gtest.h>

#include <cmath>

#include "analysis/reuse_distance.h"

namespace faascache {
namespace {

/** A curve with a sharp knee: most mass at small distances, a thin tail. */
HitRatioCurve
kneeCurve()
{
    std::vector<double> distances;
    // 900 invocations reusable within 1000 MB...
    for (int i = 0; i < 900; ++i)
        distances.push_back(1.0 + (i % 1000));
    // ...and a thin tail needing up to 100x more.
    for (int i = 0; i < 100; ++i)
        distances.push_back(1'000.0 + i * 990.0);
    return HitRatioCurve::fromReuseDistances(distances);
}

TEST(KneeSize, FindsInflectionRegion)
{
    const HitRatioCurve curve = kneeCurve();
    const MemMb knee = kneeSize(curve, 10, 100'000);
    // The knee should land near the end of the dense region (~1000 MB),
    // far below the tail's end (~100 GB).
    EXPECT_GT(knee, 200.0);
    EXPECT_LT(knee, 10'000.0);
}

TEST(KneeSize, FlatCurveReturnsMin)
{
    const HitRatioCurve flat = HitRatioCurve::fromReuseDistances(
        {kInfiniteReuseDistance, kInfiniteReuseDistance});
    EXPECT_DOUBLE_EQ(kneeSize(flat, 5, 1'000), 5.0);
}

TEST(KneeSize, WithinSearchRange)
{
    const HitRatioCurve curve = kneeCurve();
    const MemMb knee = kneeSize(curve, 50, 500);
    EXPECT_GE(knee, 50.0);
    EXPECT_LE(knee, 500.0);
}

TEST(KneeSize, MoreGridPointsRefineNotBreak)
{
    const HitRatioCurve curve = kneeCurve();
    const MemMb coarse = kneeSize(curve, 10, 100'000, 64);
    const MemMb fine = kneeSize(curve, 10, 100'000, 1024);
    // Same knee region regardless of resolution.
    EXPECT_LT(std::abs(std::log10(coarse) - std::log10(fine)), 0.5);
}

}  // namespace
}  // namespace faascache

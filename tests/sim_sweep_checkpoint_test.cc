// The append-only sweep checkpoint journal: full-fidelity payload codec
// (hexfloat doubles, percent-escaped keys), header/fingerprint checks,
// per-record checksums, and torn-tail recovery after a mid-write kill.
#include "sim/sweep_checkpoint.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

namespace faascache {
namespace {

/** Unique temp path per test; removed on destruction. */
class TempFile
{
  public:
    explicit TempFile(const std::string& tag)
        : path_(std::string(::testing::TempDir()) + "faascache_ckpt_" +
                tag + ".txt")
    {
        std::remove(path_.c_str());
    }
    ~TempFile() { std::remove(path_.c_str()); }

    const std::string& path() const { return path_; }

  private:
    std::string path_;
};

std::string
readAll(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
}

void
writeAll(const std::string& path, const std::string& bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << bytes;
}

/** A result touching every encoded field with awkward values. */
SimResult
trickyResult()
{
    SimResult r;
    r.policy_name = "GD with spaces %and\npercent\x7f";
    r.memory_mb = 0.1;  // not exactly representable in binary
    r.warm_starts = 123456789012345;
    r.cold_starts = 42;
    r.dropped = 7;
    r.evictions = 9;
    r.expirations = 11;
    r.prewarms = 13;
    r.eviction_rounds = 17;
    r.background_reclaims = 19;
    r.actual_exec_us = 23456789;
    r.baseline_exec_us = 12345678;
    r.per_function = {{1, 2, 3}, {0, 0, 0}, {10, 20, 30}};
    r.memory_usage = {{0, 0.0}, {60'000'000, 1.0 / 3.0},
                      {120'000'000, 12345.6789}};
    return r;
}

TEST(Fnv1a64, MatchesReferenceValues)
{
    // FNV-1a reference vectors: empty input is the offset basis, and
    // "a" folds 0x61 in with the 64-bit FNV prime.
    EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ULL);
    EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
    EXPECT_NE(fnv1a64("abc"), fnv1a64("acb"));
}

TEST(CheckpointCodec, RoundTripsEveryField)
{
    const SimResult original = trickyResult();
    const std::string key = "trace with space/GD %1\t#2";
    const std::string payload = encodeCheckpointPayload(key, original);
    // The journal is line-oriented: no raw control bytes may survive
    // escaping.
    EXPECT_EQ(payload.find('\n'), std::string::npos);
    EXPECT_EQ(payload.find('\t'), std::string::npos);

    std::string decoded_key;
    SimResult decoded;
    ASSERT_TRUE(decodeCheckpointPayload(payload, &decoded_key, &decoded));
    EXPECT_EQ(decoded_key, key);
    // Bit-exact equality, doubles included: this is what makes a
    // resumed sweep byte-identical to an uninterrupted one.
    EXPECT_TRUE(decoded == original);
}

TEST(CheckpointCodec, RoundTripsEmptyContainersAndNames)
{
    SimResult r;
    r.policy_name = "";
    const std::string payload = encodeCheckpointPayload("k", r);
    std::string key;
    SimResult decoded;
    ASSERT_TRUE(decodeCheckpointPayload(payload, &key, &decoded));
    EXPECT_EQ(key, "k");
    EXPECT_TRUE(decoded == r);
}

TEST(CheckpointCodec, RejectsMalformedPayloads)
{
    // Torn-write truncation at arbitrary byte offsets is caught by the
    // journal's per-record checksum (a shortened hexfloat can still be
    // a valid double); the codec itself must reject structural damage.
    const std::string good =
        encodeCheckpointPayload("key", trickyResult());
    std::string key;
    SimResult result;
    EXPECT_FALSE(decodeCheckpointPayload("", &key, &result));
    EXPECT_FALSE(decodeCheckpointPayload("key-only", &key, &result));
    EXPECT_FALSE(
        decodeCheckpointPayload(good + " trailing", &key, &result));
    // Counter field replaced by a non-number.
    EXPECT_FALSE(decodeCheckpointPayload(
        "k p 0x1p+1 a 0 0 0 0 0 0 0 0 0 0 0", &key, &result));
    // per_function count without its triples.
    EXPECT_FALSE(decodeCheckpointPayload(
        "k p 0x1p+1 0 0 0 0 0 0 0 0 0 0 2 1 1 1", &key, &result));
    // Negative and absurdly large counts are rejected outright.
    EXPECT_FALSE(decodeCheckpointPayload(
        "k p 0x1p+1 0 0 0 0 0 0 0 0 0 0 -1 0", &key, &result));
    EXPECT_FALSE(decodeCheckpointPayload(
        "k p 0x1p+1 0 0 0 0 0 0 0 0 0 0 99999999999 0", &key, &result));
    // Dangling percent-escape in the key.
    EXPECT_FALSE(decodeCheckpointPayload(
        "k%2 p 0x1p+1 0 0 0 0 0 0 0 0 0 0 0 0", &key, &result));
    // The original still decodes after all that prodding.
    EXPECT_TRUE(decodeCheckpointPayload(good, &key, &result));
}

TEST(CheckpointJournal, WriterThenLoaderRoundTrips)
{
    TempFile file("round_trip");
    const SimResult result = trickyResult();
    {
        SweepCheckpointWriter writer = SweepCheckpointWriter::beginFresh(
            file.path(), 0xdeadbeefcafef00dULL);
        writer.append("cell-a", result);
        writer.append("cell-b", SimResult{});
    }
    const SweepCheckpointLoad load = loadSweepCheckpoint(file.path());
    EXPECT_EQ(load.fingerprint, 0xdeadbeefcafef00dULL);
    EXPECT_FALSE(load.torn_tail);
    EXPECT_EQ(load.valid_bytes, readAll(file.path()).size());
    ASSERT_EQ(load.records.size(), 2u);
    EXPECT_EQ(load.records[0].key, "cell-a");
    EXPECT_TRUE(load.records[0].result == result);
    EXPECT_EQ(load.records[1].key, "cell-b");
    EXPECT_TRUE(load.records[1].result == SimResult{});
}

TEST(CheckpointJournal, TornTailIsTruncatedToValidPrefix)
{
    TempFile file("torn_tail");
    {
        SweepCheckpointWriter writer =
            SweepCheckpointWriter::beginFresh(file.path(), 1);
        writer.append("done", trickyResult());
    }
    const std::string intact = readAll(file.path());
    // A SIGKILL mid-append leaves an unterminated half record.
    writeAll(file.path(), intact + "cell 0123456789abcdef half-writ");

    const SweepCheckpointLoad load = loadSweepCheckpoint(file.path());
    EXPECT_TRUE(load.torn_tail);
    EXPECT_EQ(load.valid_bytes, intact.size());
    ASSERT_EQ(load.records.size(), 1u);
    EXPECT_EQ(load.records[0].key, "done");

    // continueAt() truncates the tail; appending after it yields a
    // journal identical to one that never tore.
    {
        SweepCheckpointWriter writer = SweepCheckpointWriter::continueAt(
            file.path(), load.valid_bytes);
        writer.append("after", SimResult{});
    }
    const SweepCheckpointLoad repaired =
        loadSweepCheckpoint(file.path());
    EXPECT_FALSE(repaired.torn_tail);
    ASSERT_EQ(repaired.records.size(), 2u);
    EXPECT_EQ(repaired.records[1].key, "after");
}

TEST(CheckpointJournal, BadChecksumEndsTheValidPrefix)
{
    TempFile file("bad_checksum");
    {
        SweepCheckpointWriter writer =
            SweepCheckpointWriter::beginFresh(file.path(), 1);
        writer.append("first", SimResult{});
        writer.append("second", SimResult{});
    }
    std::string bytes = readAll(file.path());
    // Corrupt one payload byte of the second record: its checksum no
    // longer matches, so the valid prefix ends after the first record.
    const std::size_t second = bytes.find("second");
    ASSERT_NE(second, std::string::npos);
    bytes[second] = 'X';
    writeAll(file.path(), bytes);

    const SweepCheckpointLoad load = loadSweepCheckpoint(file.path());
    EXPECT_TRUE(load.torn_tail);
    ASSERT_EQ(load.records.size(), 1u);
    EXPECT_EQ(load.records[0].key, "first");
}

TEST(CheckpointJournal, DuplicateKeysKeepFileOrder)
{
    TempFile file("duplicates");
    SimResult newer;
    newer.warm_starts = 99;
    {
        SweepCheckpointWriter writer =
            SweepCheckpointWriter::beginFresh(file.path(), 1);
        writer.append("cell", SimResult{});
        writer.append("cell", newer);
    }
    // The loader reports records in file order; the runner's restore
    // pass collapses duplicates last-record-wins.
    const SweepCheckpointLoad load = loadSweepCheckpoint(file.path());
    ASSERT_EQ(load.records.size(), 2u);
    EXPECT_EQ(load.records[0].key, "cell");
    EXPECT_EQ(load.records[1].key, "cell");
    EXPECT_EQ(load.records[1].result.warm_starts, 99);
}

TEST(CheckpointJournal, RejectsMissingFileAndForeignHeaders)
{
    TempFile file("bad_header");
    EXPECT_THROW(loadSweepCheckpoint(file.path()), std::runtime_error);

    writeAll(file.path(), "not a checkpoint\n");
    EXPECT_THROW(loadSweepCheckpoint(file.path()), std::runtime_error);

    writeAll(file.path(), "faascache-sweep-ckpt v1 fp=nothex\n");
    EXPECT_THROW(loadSweepCheckpoint(file.path()), std::runtime_error);
}

TEST(CheckpointJournal, HeaderOnlyJournalIsEmptyAndIntact)
{
    TempFile file("header_only");
    { SweepCheckpointWriter::beginFresh(file.path(), 77); }
    const SweepCheckpointLoad load = loadSweepCheckpoint(file.path());
    EXPECT_EQ(load.fingerprint, 77u);
    EXPECT_TRUE(load.records.empty());
    EXPECT_FALSE(load.torn_tail);
}

}  // namespace
}  // namespace faascache

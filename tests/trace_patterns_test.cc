#include "trace/patterns.h"

#include <gtest/gtest.h>

namespace faascache {
namespace {

std::vector<FunctionSpec>
twoFunctions()
{
    return {
        makeFunction(0, "small", 64, fromMillis(100), fromMillis(500)),
        makeFunction(1, "large", 512, fromSeconds(1), fromSeconds(3)),
    };
}

TEST(Patterns, PeriodicCountsMatchPeriods)
{
    const auto specs = twoFunctions();
    const Trace t = makePeriodicTrace(specs, {kSecond, 2 * kSecond},
                                      10 * kSecond, "periodic");
    EXPECT_TRUE(t.validate());
    EXPECT_TRUE(t.isSorted());
    const auto counts = t.invocationCounts();
    EXPECT_EQ(counts[0], 10u);
    EXPECT_EQ(counts[1], 5u);
}

TEST(Patterns, PeriodicPhaseShiftPerFunction)
{
    const auto specs = twoFunctions();
    const Trace t = makePeriodicTrace(specs, {kSecond, kSecond},
                                      3 * kSecond, "periodic");
    // Function 1's stream starts 1 ms after function 0's.
    TimeUs first0 = -1, first1 = -1;
    for (const auto& inv : t.invocations()) {
        if (inv.function == 0 && first0 < 0)
            first0 = inv.arrival_us;
        if (inv.function == 1 && first1 < 0)
            first1 = inv.arrival_us;
    }
    EXPECT_EQ(first0, 0);
    EXPECT_EQ(first1, kMillisecond);
}

TEST(Patterns, CyclicVisitsRoundRobin)
{
    const auto specs = twoFunctions();
    const Trace t = makeCyclicTrace(specs, kSecond, 5 * kSecond, "cyclic");
    ASSERT_EQ(t.invocations().size(), 5u);
    for (std::size_t i = 0; i < t.invocations().size(); ++i) {
        EXPECT_EQ(t.invocations()[i].function, i % 2);
        EXPECT_EQ(t.invocations()[i].arrival_us,
                  static_cast<TimeUs>(i) * kSecond);
    }
}

TEST(Patterns, SkewedSizeFastSmallSlowLarge)
{
    const auto specs = twoFunctions();
    const Trace t = makeSkewedSizeTrace(specs, kSecond, 5 * kSecond,
                                        20 * kSecond, "skew");
    const auto counts = t.invocationCounts();
    EXPECT_GT(counts[0], counts[1]);  // small fires faster
}

TEST(Patterns, EmptyDurationYieldsNoInvocations)
{
    const auto specs = twoFunctions();
    const Trace t = makePeriodicTrace(specs, {kSecond, kSecond}, 0, "none");
    EXPECT_TRUE(t.invocations().empty());
    EXPECT_EQ(t.functions().size(), 2u);
}

TEST(Patterns, PeriodicFunctionPhasedPastDurationGetsZeroInvocations)
{
    // Function 1's phase shift (1 ms) lands beyond the trace duration:
    // it must contribute zero invocations yet stay in the catalog, and
    // the reserve sizing must not assume every function fires.
    const auto specs = twoFunctions();
    const Trace t = makePeriodicTrace(specs, {kMillisecond / 4, kSecond},
                                      kMillisecond / 2, "phased-out");
    EXPECT_TRUE(t.validate());
    EXPECT_EQ(t.functions().size(), 2u);
    const auto counts = t.invocationCounts();
    EXPECT_EQ(counts[0], 2u);
    EXPECT_EQ(counts[1], 0u);
}

TEST(Patterns, PoissonFunctionSlowerThanDurationGetsZeroInvocations)
{
    // Function 1's mean inter-arrival dwarfs the duration, so its first
    // arrival draw lands past the end: a catalog entry with no traffic.
    auto specs = twoFunctions();
    const Trace t = makePoissonTrace(specs, {10 * kMillisecond,
                                             1000000 * kSecond},
                                     kSecond, /*seed=*/42, "quiet-tail");
    EXPECT_TRUE(t.validate());
    EXPECT_TRUE(t.isSorted());
    EXPECT_EQ(t.functions().size(), 2u);
    const auto counts = t.invocationCounts();
    EXPECT_GT(counts[0], 0u);
    EXPECT_EQ(counts[1], 0u);
}

TEST(Patterns, CyclicZeroDurationKeepsCatalog)
{
    const auto specs = twoFunctions();
    const Trace t = makeCyclicTrace(specs, kSecond, 0, "empty-cycle");
    EXPECT_TRUE(t.validate());
    EXPECT_TRUE(t.invocations().empty());
    EXPECT_EQ(t.functions().size(), 2u);
}

}  // namespace
}  // namespace faascache

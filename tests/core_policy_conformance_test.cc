// Parameterized conformance suite: every keep-alive policy must obey the
// contracts the simulator and platform model rely on, regardless of its
// eviction strategy.
#include <gtest/gtest.h>

#include <set>

#include "core/container_pool.h"
#include "core/policy_factory.h"
#include "trace/function_spec.h"
#include "util/rng.h"

namespace faascache {
namespace {

class PolicyConformance : public testing::TestWithParam<PolicyKind>
{
  protected:
    std::unique_ptr<KeepAlivePolicy>
    make() const
    {
        return makePolicy(GetParam());
    }

    static FunctionSpec
    fn(FunctionId id, MemMb mem, double init_sec = 1.0)
    {
        return makeFunction(id, "fn" + std::to_string(id), mem,
                            fromMillis(100), fromSeconds(init_sec));
    }

    static Container&
    coldUse(ContainerPool& pool, KeepAlivePolicy& policy,
            const FunctionSpec& spec, TimeUs now)
    {
        policy.onInvocationArrival(spec, now);
        Container& c = pool.add(spec, now);
        c.startInvocation(now, now + spec.cold_us);
        policy.onColdStart(c, spec, now);
        c.finishInvocation();
        return c;
    }
};

TEST_P(PolicyConformance, NameRoundTripsThroughFactory)
{
    const auto policy = make();
    EXPECT_EQ(policyKindFromName(policy->name()), GetParam());
}

TEST_P(PolicyConformance, VictimsExistAndAreIdle)
{
    ContainerPool pool(2'000);
    auto policy = make();
    for (int i = 0; i < 10; ++i) {
        coldUse(pool, *policy, fn(static_cast<FunctionId>(i), 200),
                i * kSecond);
    }
    Container& busy = *pool.findIdleWarm(0);
    busy.startInvocation(20 * kSecond, kHour);

    const auto victims = policy->selectVictims(pool, 400, 21 * kSecond);
    for (ContainerId id : victims) {
        const Container* c = pool.get(id);
        ASSERT_NE(c, nullptr);
        EXPECT_TRUE(c->idle());
        EXPECT_NE(c->id(), busy.id());
    }
}

TEST_P(PolicyConformance, VictimsFreeRequestedMemory)
{
    ContainerPool pool(2'000);
    auto policy = make();
    for (int i = 0; i < 10; ++i) {
        coldUse(pool, *policy, fn(static_cast<FunctionId>(i), 200),
                i * kSecond);
    }
    const MemMb needed = 500;
    const auto victims = policy->selectVictims(pool, needed, 20 * kSecond);
    MemMb freed = 0;
    for (ContainerId id : victims)
        freed += pool.get(id)->memMb();
    EXPECT_GE(freed, needed);
}

TEST_P(PolicyConformance, NoDuplicateVictims)
{
    ContainerPool pool(2'000);
    auto policy = make();
    for (int i = 0; i < 10; ++i) {
        coldUse(pool, *policy, fn(static_cast<FunctionId>(i), 200),
                i * kSecond);
    }
    const auto victims = policy->selectVictims(pool, 1'000, 20 * kSecond);
    std::set<ContainerId> unique(victims.begin(), victims.end());
    EXPECT_EQ(unique.size(), victims.size());
}

TEST_P(PolicyConformance, BestEffortWhenIdleMemoryInsufficient)
{
    ContainerPool pool(2'000);
    auto policy = make();
    coldUse(pool, *policy, fn(0, 200), 0);
    Container& busy = *pool.findIdleWarm(0);
    busy.startInvocation(kSecond, kHour);
    coldUse(pool, *policy, fn(1, 300), 2 * kSecond);

    // Asks for more than idle memory (300 idle vs 800 requested).
    const auto victims = policy->selectVictims(pool, 800, 3 * kSecond);
    MemMb freed = 0;
    for (ContainerId id : victims) {
        EXPECT_TRUE(pool.get(id)->idle());
        freed += pool.get(id)->memMb();
    }
    EXPECT_LE(freed, 300.0 + 1e-9);
}

TEST_P(PolicyConformance, ExpiredContainersAreIdleAndLive)
{
    ContainerPool pool(2'000);
    auto policy = make();
    for (int i = 0; i < 5; ++i) {
        coldUse(pool, *policy, fn(static_cast<FunctionId>(i), 100),
                i * kSecond);
    }
    Container& busy = *pool.findIdleWarm(2);
    busy.startInvocation(10 * kSecond, 10 * kHour);

    const auto expired = policy->expiredContainers(pool, 5 * kHour);
    for (ContainerId id : expired) {
        const Container* c = pool.get(id);
        ASSERT_NE(c, nullptr);
        EXPECT_TRUE(c->idle());
    }
}

TEST_P(PolicyConformance, ArrivalUpdatesSharedStats)
{
    auto policy = make();
    const FunctionSpec f = fn(0, 100);
    policy->onInvocationArrival(f, 5 * kSecond);
    EXPECT_EQ(policy->stats().of(0).frequency, 1);
    EXPECT_EQ(policy->stats().of(0).last_arrival_us, 5 * kSecond);
}

TEST_P(PolicyConformance, LastEvictionResetsFrequency)
{
    ContainerPool pool(2'000);
    auto policy = make();
    Container& c = coldUse(pool, *policy, fn(0, 100), 0);
    policy->onEviction(c, /*last_of_function=*/true, kSecond);
    EXPECT_EQ(policy->stats().of(0).frequency, 0);
}

TEST_P(PolicyConformance, DeterministicVictimSelection)
{
    // Two identical pools + policies make identical decisions.
    auto run = [&](std::uint64_t) {
        ContainerPool pool(4'000);
        auto policy = make();
        Rng rng(99);
        for (int i = 0; i < 20; ++i) {
            const auto id = static_cast<FunctionId>(rng.uniformInt(8));
            const FunctionSpec spec =
                fn(id, 100 + 50.0 * static_cast<double>(id),
                   0.5 + static_cast<double>(id));
            if (Container* warm = pool.findIdleWarm(id)) {
                policy->onInvocationArrival(spec, i * kSecond);
                warm->startInvocation(i * kSecond,
                                      i * kSecond + spec.warm_us);
                policy->onWarmStart(*warm, spec, i * kSecond);
                warm->finishInvocation();
            } else if (pool.fits(spec.mem_mb)) {
                coldUse(pool, *policy, spec, i * kSecond);
            }
        }
        return policy->selectVictims(pool, 600, kMinute);
    };
    EXPECT_EQ(run(0), run(1));
}

TEST_P(PolicyConformance, ZeroNeededReturnsNoVictims)
{
    ContainerPool pool(2'000);
    auto policy = make();
    coldUse(pool, *policy, fn(0, 100), 0);
    // Greedy-Dual may batch beyond the request only when configured;
    // by default asking for nothing evicts nothing.
    EXPECT_TRUE(policy->selectVictims(pool, 0, kSecond).empty());
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, PolicyConformance, testing::ValuesIn(allPolicyKinds()),
    [](const testing::TestParamInfo<PolicyKind>& info) {
        return policyKindName(info.param);
    });

}  // namespace
}  // namespace faascache

#include "core/container_pool.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace faascache {
namespace {

FunctionSpec
fn(FunctionId id, MemMb mem)
{
    return makeFunction(id, "fn" + std::to_string(id), mem, fromMillis(100),
                        fromMillis(100));
}

/** Every behavioral test runs against both storage backends: the slab
 *  arena (default) and the reference hash-map oracle. */
class ContainerPoolTest : public ::testing::TestWithParam<PoolBackend>
{
  protected:
    ContainerPool makePool(MemMb capacity_mb)
    {
        return ContainerPool(capacity_mb, GetParam());
    }
};

TEST_P(ContainerPoolTest, CapacityAccounting)
{
    ContainerPool pool = makePool(1000);
    EXPECT_DOUBLE_EQ(pool.capacityMb(), 1000.0);
    EXPECT_DOUBLE_EQ(pool.usedMb(), 0.0);
    EXPECT_DOUBLE_EQ(pool.freeMb(), 1000.0);

    pool.add(fn(0, 300), 0);
    EXPECT_DOUBLE_EQ(pool.usedMb(), 300.0);
    EXPECT_DOUBLE_EQ(pool.freeMb(), 700.0);
    EXPECT_TRUE(pool.fits(700));
    EXPECT_FALSE(pool.fits(701));
}

TEST_P(ContainerPoolTest, AddRemove)
{
    ContainerPool pool = makePool(1000);
    Container& c = pool.add(fn(0, 100), 0);
    EXPECT_EQ(pool.size(), 1u);
    EXPECT_EQ(pool.countOf(0), 1u);
    pool.remove(c.id());
    EXPECT_EQ(pool.size(), 0u);
    EXPECT_EQ(pool.countOf(0), 0u);
    EXPECT_DOUBLE_EQ(pool.usedMb(), 0.0);
}

TEST_P(ContainerPoolTest, IdsAreUnique)
{
    ContainerPool pool = makePool(1000);
    Container& a = pool.add(fn(0, 100), 0);
    const ContainerId a_id = a.id();
    pool.remove(a_id);
    Container& b = pool.add(fn(0, 100), 0);
    EXPECT_NE(b.id(), a_id);
}

TEST_P(ContainerPoolTest, GetLookup)
{
    ContainerPool pool = makePool(1000);
    Container& c = pool.add(fn(0, 100), 0);
    EXPECT_EQ(pool.get(c.id()), &c);
    EXPECT_EQ(pool.get(999999), nullptr);
}

TEST_P(ContainerPoolTest, ReferencesStableAcrossGrowth)
{
    // Both backends promise stable Container addresses: the slab stores
    // slots in fixed-size chunks, the reference pool heap-allocates.
    ContainerPool pool = makePool(100'000);
    std::vector<Container*> added;
    std::vector<ContainerId> ids;
    for (int i = 0; i < 600; ++i) {  // crosses two slab chunks
        Container& c = pool.add(fn(0, 1), i);
        added.push_back(&c);
        ids.push_back(c.id());
    }
    for (std::size_t i = 0; i < added.size(); ++i) {
        EXPECT_EQ(pool.get(ids[i]), added[i]);
        EXPECT_EQ(added[i]->id(), ids[i]);
    }
}

TEST_P(ContainerPoolTest, SlotsRecycleButStayUniqueAmongLive)
{
    ContainerPool pool = makePool(10'000);
    Container& a = pool.add(fn(0, 10), 0);
    Container& b = pool.add(fn(0, 10), 0);
    const std::uint32_t freed_slot = a.poolSlot();
    EXPECT_NE(a.poolSlot(), b.poolSlot());
    pool.remove(a.id());
    Container& c = pool.add(fn(1, 10), 1);
    // LIFO free-list: the new container reuses the freed slot, and every
    // live slot stays below the dense upper bound.
    EXPECT_EQ(c.poolSlot(), freed_slot);
    EXPECT_NE(c.poolSlot(), b.poolSlot());
    EXPECT_LT(b.poolSlot(), pool.slotUpperBound());
    EXPECT_LT(c.poolSlot(), pool.slotUpperBound());
}

TEST_P(ContainerPoolTest, FindIdleWarmPrefersMostRecent)
{
    ContainerPool pool = makePool(1000);
    Container& old_c = pool.add(fn(0, 100), 0);
    Container& new_c = pool.add(fn(0, 100), 0);
    old_c.startInvocation(10, 20);
    old_c.finishInvocation();
    new_c.startInvocation(50, 60);
    new_c.finishInvocation();
    EXPECT_EQ(pool.findIdleWarm(0), &new_c);
}

TEST_P(ContainerPoolTest, FindIdleWarmBreaksLastUsedTiesById)
{
    // Freshly added containers share lastUsed == add time; the contract
    // (explicit in both backends) is lowest id wins the tie.
    ContainerPool pool = makePool(1000);
    Container& first = pool.add(fn(0, 100), 7);
    pool.add(fn(0, 100), 7);
    pool.add(fn(0, 100), 7);
    EXPECT_EQ(pool.findIdleWarm(0), &first);
}

TEST_P(ContainerPoolTest, FindIdleWarmSkipsBusy)
{
    ContainerPool pool = makePool(1000);
    Container& c = pool.add(fn(0, 100), 0);
    c.startInvocation(0, 100);
    EXPECT_EQ(pool.findIdleWarm(0), nullptr);
    c.finishInvocation();
    EXPECT_EQ(pool.findIdleWarm(0), &c);
}

TEST_P(ContainerPoolTest, FindIdleWarmWrongFunction)
{
    ContainerPool pool = makePool(1000);
    pool.add(fn(0, 100), 0);
    EXPECT_EQ(pool.findIdleWarm(1), nullptr);
}

TEST_P(ContainerPoolTest, IdleAccounting)
{
    ContainerPool pool = makePool(1000);
    Container& a = pool.add(fn(0, 100), 0);
    pool.add(fn(1, 200), 0);
    a.startInvocation(0, 50);
    EXPECT_EQ(pool.idleCount(), 1u);
    EXPECT_DOUBLE_EQ(pool.idleMb(), 200.0);
    EXPECT_EQ(pool.idleContainers().size(), 1u);
}

TEST_P(ContainerPoolTest, ReleaseFinished)
{
    ContainerPool pool = makePool(1000);
    Container& a = pool.add(fn(0, 100), 0);
    Container& b = pool.add(fn(1, 100), 0);
    a.startInvocation(0, 50);
    b.startInvocation(0, 200);
    const auto released = pool.releaseFinished(100);
    ASSERT_EQ(released.size(), 1u);
    EXPECT_EQ(released[0], &a);
    EXPECT_TRUE(a.idle());
    EXPECT_TRUE(b.busy());
}

TEST_P(ContainerPoolTest, ReleaseFinishedAtExactBoundary)
{
    ContainerPool pool = makePool(1000);
    Container& a = pool.add(fn(0, 100), 0);
    a.startInvocation(0, 100);
    EXPECT_EQ(pool.releaseFinished(100).size(), 1u);
}

TEST_P(ContainerPoolTest, ReleaseFinishedSortedById)
{
    ContainerPool pool = makePool(10'000);
    std::vector<ContainerId> ids;
    for (int i = 0; i < 8; ++i) {
        Container& c = pool.add(fn(0, 10), 0);
        c.startInvocation(0, 10 + i);
        ids.push_back(c.id());
    }
    const auto released = pool.releaseFinished(100);
    ASSERT_EQ(released.size(), ids.size());
    for (std::size_t i = 1; i < released.size(); ++i)
        EXPECT_LT(released[i - 1]->id(), released[i]->id());
}

TEST_P(ContainerPoolTest, ContainersOfTracksPerFunction)
{
    ContainerPool pool = makePool(1000);
    pool.add(fn(0, 100), 0);
    pool.add(fn(0, 100), 0);
    pool.add(fn(1, 100), 0);
    EXPECT_EQ(pool.containersOf(0).size(), 2u);
    EXPECT_EQ(pool.containersOf(1).size(), 1u);
    EXPECT_TRUE(pool.containersOf(42).empty());
}

TEST_P(ContainerPoolTest, ContainersOfOrderedById)
{
    ContainerPool pool = makePool(10'000);
    for (int i = 0; i < 12; ++i)
        pool.add(fn(0, 10), i);
    const auto mine = pool.containersOf(0);
    ASSERT_EQ(mine.size(), 12u);
    for (std::size_t i = 1; i < mine.size(); ++i)
        EXPECT_LT(mine[i - 1]->id(), mine[i]->id());
}

TEST_P(ContainerPoolTest, CountOfTracksBusyAndIdle)
{
    // countOf must include busy containers in both backends (the slab
    // keeps a separate per-function counter; make sure the busy/idle
    // list transitions never desync it).
    ContainerPool pool = makePool(1000);
    Container& a = pool.add(fn(0, 100), 0);
    Container& b = pool.add(fn(0, 100), 0);
    EXPECT_EQ(pool.countOf(0), 2u);
    a.startInvocation(0, 50);
    EXPECT_EQ(pool.countOf(0), 2u);
    b.startInvocation(0, 60);
    EXPECT_EQ(pool.countOf(0), 2u);
    a.finishInvocation();
    EXPECT_EQ(pool.countOf(0), 2u);
    pool.remove(a.id());
    EXPECT_EQ(pool.countOf(0), 1u);
}

TEST_P(ContainerPoolTest, SetCapacityAllowsOverCommit)
{
    ContainerPool pool = makePool(1000);
    pool.add(fn(0, 800), 0);
    pool.setCapacityMb(500);
    EXPECT_DOUBLE_EQ(pool.capacityMb(), 500.0);
    EXPECT_DOUBLE_EQ(pool.usedMb(), 800.0);
    EXPECT_DOUBLE_EQ(pool.freeMb(), 0.0);  // clamped, not negative
    EXPECT_FALSE(pool.fits(1));
}

TEST_P(ContainerPoolTest, IdleContainersDeterministicOrder)
{
    ContainerPool pool = makePool(10'000);
    for (int i = 0; i < 20; ++i)
        pool.add(fn(0, 10), 0);
    const auto idle = pool.idleContainers();
    for (std::size_t i = 1; i < idle.size(); ++i)
        EXPECT_LT(idle[i - 1]->id(), idle[i]->id());
}

TEST_P(ContainerPoolTest, ForEachVisitsAll)
{
    ContainerPool pool = makePool(1000);
    pool.add(fn(0, 100), 0);
    pool.add(fn(1, 100), 0);
    int count = 0;
    pool.forEach([&](Container&) { ++count; });
    EXPECT_EQ(count, 2);
}

TEST_P(ContainerPoolTest, ForEachSkipsRemoved)
{
    ContainerPool pool = makePool(10'000);
    std::vector<ContainerId> ids;
    for (int i = 0; i < 10; ++i)
        ids.push_back(pool.add(fn(0, 10), 0).id());
    for (std::size_t i = 0; i < ids.size(); i += 2)
        pool.remove(ids[i]);
    int count = 0;
    pool.forEach([&](Container& c) {
        ++count;
        EXPECT_NE(pool.get(c.id()), nullptr);
    });
    EXPECT_EQ(count, 5);
}

TEST_P(ContainerPoolTest, ChurnKeepsAccountingExact)
{
    // Add/remove churn far past the initial window exercises slab slot
    // recycling, the id-window compaction, and the free-list.
    ContainerPool pool = makePool(1'000'000);
    std::vector<ContainerId> live;
    for (int round = 0; round < 50; ++round) {
        for (int i = 0; i < 40; ++i)
            live.push_back(pool.add(fn(i % 3, 5), round).id());
        // Remove the older half, front-first.
        const std::size_t goal = live.size() / 2;
        while (live.size() > goal) {
            pool.remove(live.front());
            live.erase(live.begin());
        }
    }
    EXPECT_EQ(pool.size(), live.size());
    EXPECT_DOUBLE_EQ(pool.usedMb(), 5.0 * static_cast<double>(live.size()));
    for (ContainerId id : live) {
        Container* c = pool.get(id);
        ASSERT_NE(c, nullptr);
        EXPECT_EQ(c->id(), id);
    }
    std::size_t per_function = 0;
    for (FunctionId f = 0; f < 3; ++f)
        per_function += pool.countOf(f);
    EXPECT_EQ(per_function, live.size());
}

TEST_P(ContainerPoolTest, ReserveIsBehaviorNeutral)
{
    ContainerPool pool = makePool(10'000);
    pool.reserve(512, 64);
    Container& c = pool.add(fn(0, 100), 0);
    EXPECT_EQ(pool.get(c.id()), &c);
    EXPECT_EQ(pool.size(), 1u);
    EXPECT_EQ(pool.countOf(0), 1u);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, ContainerPoolTest,
                         ::testing::Values(PoolBackend::Slab,
                                           PoolBackend::ReferenceMap),
                         [](const auto& info) {
                             return std::string(
                                 poolBackendName(info.param));
                         });

using ContainerPoolDeathTest = ContainerPoolTest;

TEST_P(ContainerPoolDeathTest, RemoveBusyAsserts)
{
    ContainerPool pool = makePool(1000);
    Container& c = pool.add(fn(0, 100), 0);
    c.startInvocation(0, 100);
    EXPECT_DEATH(pool.remove(c.id()), "");
}

TEST_P(ContainerPoolDeathTest, AddBeyondCapacityAsserts)
{
    ContainerPool pool = makePool(100);
    EXPECT_DEATH(pool.add(fn(0, 200), 0), "");
}

INSTANTIATE_TEST_SUITE_P(AllBackends, ContainerPoolDeathTest,
                         ::testing::Values(PoolBackend::Slab,
                                           PoolBackend::ReferenceMap),
                         [](const auto& info) {
                             return std::string(
                                 poolBackendName(info.param));
                         });

}  // namespace
}  // namespace faascache

#include "core/container_pool.h"

#include <gtest/gtest.h>

namespace faascache {
namespace {

FunctionSpec
fn(FunctionId id, MemMb mem)
{
    return makeFunction(id, "fn" + std::to_string(id), mem, fromMillis(100),
                        fromMillis(100));
}

TEST(ContainerPool, CapacityAccounting)
{
    ContainerPool pool(1000);
    EXPECT_DOUBLE_EQ(pool.capacityMb(), 1000.0);
    EXPECT_DOUBLE_EQ(pool.usedMb(), 0.0);
    EXPECT_DOUBLE_EQ(pool.freeMb(), 1000.0);

    pool.add(fn(0, 300), 0);
    EXPECT_DOUBLE_EQ(pool.usedMb(), 300.0);
    EXPECT_DOUBLE_EQ(pool.freeMb(), 700.0);
    EXPECT_TRUE(pool.fits(700));
    EXPECT_FALSE(pool.fits(701));
}

TEST(ContainerPool, AddRemove)
{
    ContainerPool pool(1000);
    Container& c = pool.add(fn(0, 100), 0);
    EXPECT_EQ(pool.size(), 1u);
    EXPECT_EQ(pool.countOf(0), 1u);
    pool.remove(c.id());
    EXPECT_EQ(pool.size(), 0u);
    EXPECT_EQ(pool.countOf(0), 0u);
    EXPECT_DOUBLE_EQ(pool.usedMb(), 0.0);
}

TEST(ContainerPool, IdsAreUnique)
{
    ContainerPool pool(1000);
    Container& a = pool.add(fn(0, 100), 0);
    const ContainerId a_id = a.id();
    pool.remove(a_id);
    Container& b = pool.add(fn(0, 100), 0);
    EXPECT_NE(b.id(), a_id);
}

TEST(ContainerPool, GetLookup)
{
    ContainerPool pool(1000);
    Container& c = pool.add(fn(0, 100), 0);
    EXPECT_EQ(pool.get(c.id()), &c);
    EXPECT_EQ(pool.get(999999), nullptr);
}

TEST(ContainerPool, FindIdleWarmPrefersMostRecent)
{
    ContainerPool pool(1000);
    Container& old_c = pool.add(fn(0, 100), 0);
    Container& new_c = pool.add(fn(0, 100), 0);
    old_c.startInvocation(10, 20);
    old_c.finishInvocation();
    new_c.startInvocation(50, 60);
    new_c.finishInvocation();
    EXPECT_EQ(pool.findIdleWarm(0), &new_c);
}

TEST(ContainerPool, FindIdleWarmSkipsBusy)
{
    ContainerPool pool(1000);
    Container& c = pool.add(fn(0, 100), 0);
    c.startInvocation(0, 100);
    EXPECT_EQ(pool.findIdleWarm(0), nullptr);
    c.finishInvocation();
    EXPECT_EQ(pool.findIdleWarm(0), &c);
}

TEST(ContainerPool, FindIdleWarmWrongFunction)
{
    ContainerPool pool(1000);
    pool.add(fn(0, 100), 0);
    EXPECT_EQ(pool.findIdleWarm(1), nullptr);
}

TEST(ContainerPool, IdleAccounting)
{
    ContainerPool pool(1000);
    Container& a = pool.add(fn(0, 100), 0);
    pool.add(fn(1, 200), 0);
    a.startInvocation(0, 50);
    EXPECT_EQ(pool.idleCount(), 1u);
    EXPECT_DOUBLE_EQ(pool.idleMb(), 200.0);
    EXPECT_EQ(pool.idleContainers().size(), 1u);
}

TEST(ContainerPool, ReleaseFinished)
{
    ContainerPool pool(1000);
    Container& a = pool.add(fn(0, 100), 0);
    Container& b = pool.add(fn(1, 100), 0);
    a.startInvocation(0, 50);
    b.startInvocation(0, 200);
    const auto released = pool.releaseFinished(100);
    ASSERT_EQ(released.size(), 1u);
    EXPECT_EQ(released[0], &a);
    EXPECT_TRUE(a.idle());
    EXPECT_TRUE(b.busy());
}

TEST(ContainerPool, ReleaseFinishedAtExactBoundary)
{
    ContainerPool pool(1000);
    Container& a = pool.add(fn(0, 100), 0);
    a.startInvocation(0, 100);
    EXPECT_EQ(pool.releaseFinished(100).size(), 1u);
}

TEST(ContainerPool, ContainersOfTracksPerFunction)
{
    ContainerPool pool(1000);
    pool.add(fn(0, 100), 0);
    pool.add(fn(0, 100), 0);
    pool.add(fn(1, 100), 0);
    EXPECT_EQ(pool.containersOf(0).size(), 2u);
    EXPECT_EQ(pool.containersOf(1).size(), 1u);
    EXPECT_TRUE(pool.containersOf(42).empty());
}

TEST(ContainerPool, SetCapacityAllowsOverCommit)
{
    ContainerPool pool(1000);
    pool.add(fn(0, 800), 0);
    pool.setCapacityMb(500);
    EXPECT_DOUBLE_EQ(pool.capacityMb(), 500.0);
    EXPECT_DOUBLE_EQ(pool.usedMb(), 800.0);
    EXPECT_DOUBLE_EQ(pool.freeMb(), 0.0);  // clamped, not negative
    EXPECT_FALSE(pool.fits(1));
}

TEST(ContainerPool, IdleContainersDeterministicOrder)
{
    ContainerPool pool(10'000);
    for (int i = 0; i < 20; ++i)
        pool.add(fn(0, 10), 0);
    const auto idle = pool.idleContainers();
    for (std::size_t i = 1; i < idle.size(); ++i)
        EXPECT_LT(idle[i - 1]->id(), idle[i]->id());
}

TEST(ContainerPool, ForEachVisitsAll)
{
    ContainerPool pool(1000);
    pool.add(fn(0, 100), 0);
    pool.add(fn(1, 100), 0);
    int count = 0;
    pool.forEach([&](Container&) { ++count; });
    EXPECT_EQ(count, 2);
}

TEST(ContainerPoolDeathTest, RemoveBusyAsserts)
{
    ContainerPool pool(1000);
    Container& c = pool.add(fn(0, 100), 0);
    c.startInvocation(0, 100);
    EXPECT_DEATH(pool.remove(c.id()), "");
}

TEST(ContainerPoolDeathTest, AddBeyondCapacityAsserts)
{
    ContainerPool pool(100);
    EXPECT_DEATH(pool.add(fn(0, 200), 0), "");
}

}  // namespace
}  // namespace faascache

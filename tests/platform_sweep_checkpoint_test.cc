// Checkpoint/resume for the platform and cluster sweeps
// (platform/experiment_checkpoint.h): full-fidelity payload codecs,
// grid fingerprints, and runPlatformSweepReport()/
// runClusterSweepReport() resume that restores results bit-for-bit.
#include "platform/experiment_checkpoint.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "platform/experiment.h"
#include "trace/function_spec.h"
#include "util/checkpoint_journal.h"

namespace faascache {
namespace {

/** Unique temp path per test; removed on destruction. */
class TempFile
{
  public:
    explicit TempFile(const std::string& tag)
        : path_(std::string(::testing::TempDir()) +
                "faascache_platform_" + tag + ".ckpt")
    {
        std::remove(path_.c_str());
    }
    ~TempFile() { std::remove(path_.c_str()); }

    const std::string& path() const { return path_; }

  private:
    std::string path_;
};

/** Two functions contending for memory: warm hits, colds, and drops. */
const Trace&
testTrace()
{
    static const Trace kTrace = [] {
        Trace t("platform-ckpt-test");
        t.addFunction(makeFunction(0, "hot", 400, fromSeconds(0.5),
                                   fromSeconds(2.0)));
        t.addFunction(makeFunction(1, "big", 700, fromSeconds(0.5),
                                   fromSeconds(2.0)));
        for (int i = 0; i < 200; ++i)
            t.addInvocation(i % 4 == 3 ? 1 : 0, i * 2 * kSecond);
        return t;
    }();
    return kTrace;
}

std::vector<PlatformCell>
platformGrid()
{
    std::vector<PlatformCell> cells;
    for (double memory_mb : {600.0, 1200.0}) {
        for (PolicyKind kind :
             {PolicyKind::Ttl, PolicyKind::GreedyDual}) {
            PlatformCell cell;
            cell.trace = &testTrace();
            cell.kind = kind;
            cell.server.cores = 2;
            cell.server.memory_mb = memory_mb;
            cells.push_back(cell);
        }
    }
    return cells;
}

std::vector<ClusterCell>
clusterGrid()
{
    std::vector<ClusterCell> cells;
    for (PolicyKind kind : {PolicyKind::Ttl, PolicyKind::GreedyDual}) {
        ClusterCell cell;
        cell.trace = &testTrace();
        cell.kind = kind;
        cell.config.num_servers = 2;
        cell.config.server.cores = 2;
        cell.config.server.memory_mb = 700;
        cells.push_back(cell);
    }
    return cells;
}

void
expectSameServerConfig(const ServerConfig& a, const ServerConfig& b)
{
    EXPECT_EQ(a.cores, b.cores);
    EXPECT_EQ(a.memory_mb, b.memory_mb);
    EXPECT_EQ(a.queue_capacity, b.queue_capacity);
    EXPECT_EQ(a.queue_timeout_us, b.queue_timeout_us);
    EXPECT_EQ(a.maintenance_interval_us, b.maintenance_interval_us);
    EXPECT_EQ(a.enable_prewarm, b.enable_prewarm);
    EXPECT_EQ(a.cold_start_cpu_slots, b.cold_start_cpu_slots);
    EXPECT_EQ(a.overload.admission.enabled, b.overload.admission.enabled);
    EXPECT_EQ(a.overload.admission.target_delay_us,
              b.overload.admission.target_delay_us);
    EXPECT_EQ(a.overload.admission.interval_us,
              b.overload.admission.interval_us);
    EXPECT_EQ(a.overload.brownout.enabled, b.overload.brownout.enabled);
    EXPECT_EQ(a.overload.brownout.min_duration_us,
              b.overload.brownout.min_duration_us);
    EXPECT_EQ(a.overload.brownout.on_admission_violation,
              b.overload.brownout.on_admission_violation);
    EXPECT_EQ(a.overload.brownout.on_memory_pressure,
              b.overload.brownout.on_memory_pressure);
}

void
expectSamePlatformResult(const PlatformResult& a, const PlatformResult& b)
{
    EXPECT_EQ(a.policy_name, b.policy_name);
    expectSameServerConfig(a.config, b.config);
    EXPECT_EQ(a.warm_starts, b.warm_starts);
    EXPECT_EQ(a.cold_starts, b.cold_starts);
    EXPECT_EQ(a.dropped_queue_full, b.dropped_queue_full);
    EXPECT_EQ(a.dropped_timeout, b.dropped_timeout);
    EXPECT_EQ(a.dropped_oversize, b.dropped_oversize);
    EXPECT_EQ(a.evictions, b.evictions);
    EXPECT_EQ(a.expirations, b.expirations);
    EXPECT_EQ(a.prewarms, b.prewarms);
    EXPECT_EQ(a.robustness.spawn_failures, b.robustness.spawn_failures);
    EXPECT_EQ(a.robustness.crashes, b.robustness.crashes);
    EXPECT_EQ(a.robustness.restarts, b.robustness.restarts);
    EXPECT_EQ(a.robustness.dropped_unavailable,
              b.robustness.dropped_unavailable);
    EXPECT_EQ(a.robustness.redispatch_cold_starts,
              b.robustness.redispatch_cold_starts);
    EXPECT_EQ(a.robustness.downtime_us, b.robustness.downtime_us);
    EXPECT_EQ(a.overload, b.overload);
    EXPECT_EQ(a.last_congested_us, b.last_congested_us);
    ASSERT_EQ(a.per_function.size(), b.per_function.size());
    for (std::size_t i = 0; i < a.per_function.size(); ++i) {
        EXPECT_EQ(a.per_function[i].warm, b.per_function[i].warm);
        EXPECT_EQ(a.per_function[i].cold, b.per_function[i].cold);
        EXPECT_EQ(a.per_function[i].dropped, b.per_function[i].dropped);
    }
    // Bit-exact doubles: the hexfloat codec must round-trip perfectly.
    ASSERT_EQ(a.latencies_sec.size(), b.latencies_sec.size());
    for (std::size_t i = 0; i < a.latencies_sec.size(); ++i)
        EXPECT_EQ(a.latencies_sec[i], b.latencies_sec[i]);
    ASSERT_EQ(a.latency_sum_sec.size(), b.latency_sum_sec.size());
    for (std::size_t i = 0; i < a.latency_sum_sec.size(); ++i)
        EXPECT_EQ(a.latency_sum_sec[i], b.latency_sum_sec[i]);
}

void
expectSameClusterResult(const ClusterResult& a, const ClusterResult& b)
{
    EXPECT_EQ(a.retries, b.retries);
    EXPECT_EQ(a.failovers, b.failovers);
    EXPECT_EQ(a.shed_requests, b.shed_requests);
    EXPECT_EQ(a.failed_requests, b.failed_requests);
    EXPECT_EQ(a.retry_budget_exhausted, b.retry_budget_exhausted);
    EXPECT_EQ(a.breaker_opens, b.breaker_opens);
    EXPECT_EQ(a.breaker_closes, b.breaker_closes);
    EXPECT_EQ(a.breaker_probes, b.breaker_probes);
    ASSERT_EQ(a.servers.size(), b.servers.size());
    for (std::size_t i = 0; i < a.servers.size(); ++i)
        expectSamePlatformResult(a.servers[i], b.servers[i]);
}

TEST(PlatformCheckpointCodec, RoundTripsARealRun)
{
    const PlatformCell cell = platformGrid()[1];
    const PlatformResult result =
        runPlatform(*cell.trace, cell.kind, cell.server, cell.policy);
    ASSERT_GT(result.served(), 0);
    ASSERT_FALSE(result.latencies_sec.empty());

    const std::string payload =
        encodePlatformCheckpointPayload("grid key/with spaces", result);
    std::string key;
    PlatformResult decoded;
    ASSERT_TRUE(decodePlatformCheckpointPayload(payload, &key, &decoded));
    EXPECT_EQ(key, "grid key/with spaces");
    expectSamePlatformResult(result, decoded);
}

TEST(PlatformCheckpointCodec, RoundTripsOverloadCounters)
{
    // Non-zero overload accounting (a hand-built result: the grid's
    // cells never trip the controllers) must survive the codec.
    PlatformCell cell = platformGrid()[0];
    PlatformResult result =
        runPlatform(*cell.trace, cell.kind, cell.server, cell.policy);
    result.config.overload.admission.enabled = true;
    result.config.overload.admission.target_delay_us = 123;
    result.config.overload.brownout.enabled = true;
    result.config.overload.brownout.on_memory_pressure = false;
    result.overload.admission_shed = 17;
    result.overload.admission_violations = 3;
    result.overload.brownout_denied_cold = 9;
    result.overload.brownout_windows = 2;
    result.overload.brownout_us = 42 * kSecond;
    result.last_congested_us = 7 * kMinute;

    const std::string payload =
        encodePlatformCheckpointPayload("overload", result);
    std::string key;
    PlatformResult decoded;
    ASSERT_TRUE(decodePlatformCheckpointPayload(payload, &key, &decoded));
    expectSamePlatformResult(result, decoded);
}

TEST(ClusterCheckpointCodec, RoundTripsOverloadCounters)
{
    const ClusterCell cell = clusterGrid()[0];
    ClusterResult result =
        runCluster(*cell.trace, cell.kind, cell.config, cell.policy);
    result.retry_budget_exhausted = 5;
    result.breaker_opens = 4;
    result.breaker_closes = 3;
    result.breaker_probes = 11;

    const std::string payload =
        encodeClusterCheckpointPayload("overload", result);
    std::string key;
    ClusterResult decoded;
    ASSERT_TRUE(decodeClusterCheckpointPayload(payload, &key, &decoded));
    expectSameClusterResult(result, decoded);
}

TEST(PlatformCheckpointCodec, RejectsTruncationAndTrailingGarbage)
{
    const PlatformCell cell = platformGrid()[0];
    const PlatformResult result =
        runPlatform(*cell.trace, cell.kind, cell.server, cell.policy);
    const std::string payload =
        encodePlatformCheckpointPayload("k", result);

    std::string key;
    PlatformResult decoded;
    EXPECT_FALSE(decodePlatformCheckpointPayload(
        payload.substr(0, payload.size() / 2), &key, &decoded));
    EXPECT_FALSE(decodePlatformCheckpointPayload(payload + " 7", &key,
                                                 &decoded));
    EXPECT_FALSE(decodePlatformCheckpointPayload("", &key, &decoded));
}

TEST(ClusterCheckpointCodec, RoundTripsARealRun)
{
    const ClusterCell cell = clusterGrid()[1];
    const ClusterResult result =
        runCluster(*cell.trace, cell.kind, cell.config, cell.policy);
    ASSERT_EQ(result.servers.size(), 2u);

    const std::string payload =
        encodeClusterCheckpointPayload("cluster/cell", result);
    std::string key;
    ClusterResult decoded;
    ASSERT_TRUE(decodeClusterCheckpointPayload(payload, &key, &decoded));
    EXPECT_EQ(key, "cluster/cell");
    expectSameClusterResult(result, decoded);
}

TEST(PlatformFingerprint, SensitiveToGridKnobs)
{
    const std::vector<PlatformCell> grid = platformGrid();
    EXPECT_EQ(platformSweepFingerprint(grid),
              platformSweepFingerprint(platformGrid()));

    std::vector<PlatformCell> resized = platformGrid();
    resized[0].server.memory_mb += 1.0;
    EXPECT_NE(platformSweepFingerprint(grid),
              platformSweepFingerprint(resized));

    std::vector<PlatformCell> fewer = platformGrid();
    fewer.pop_back();
    EXPECT_NE(platformSweepFingerprint(grid),
              platformSweepFingerprint(fewer));

    // Overload knobs are part of the grid identity: a resumed sweep
    // must not mix defended and undefended cells.
    std::vector<PlatformCell> defended = platformGrid();
    defended[0].server.overload.admission.enabled = true;
    EXPECT_NE(platformSweepFingerprint(grid),
              platformSweepFingerprint(defended));

    std::vector<PlatformCell> browned = platformGrid();
    browned[0].server.overload.brownout.enabled = true;
    EXPECT_NE(platformSweepFingerprint(grid),
              platformSweepFingerprint(browned));
}

TEST(ClusterFingerprint, SensitiveToFleetAndFaultKnobs)
{
    const std::vector<ClusterCell> grid = clusterGrid();
    EXPECT_EQ(clusterSweepFingerprint(grid),
              clusterSweepFingerprint(clusterGrid()));

    std::vector<ClusterCell> rebalanced = clusterGrid();
    rebalanced[0].config.balancing = LoadBalancing::RoundRobin;
    EXPECT_NE(clusterSweepFingerprint(grid),
              clusterSweepFingerprint(rebalanced));

    std::vector<ClusterCell> faulted = clusterGrid();
    faulted[1].config.faults.crashes.push_back(
        {0, 10 * kMinute, 2 * kMinute});
    EXPECT_NE(clusterSweepFingerprint(grid),
              clusterSweepFingerprint(faulted));

    std::vector<ClusterCell> bigger = clusterGrid();
    bigger[0].config.num_servers = 3;
    EXPECT_NE(clusterSweepFingerprint(grid),
              clusterSweepFingerprint(bigger));

    std::vector<ClusterCell> jittered = clusterGrid();
    jittered[0].config.failover.backoff_jitter_frac = 0.25;
    EXPECT_NE(clusterSweepFingerprint(grid),
              clusterSweepFingerprint(jittered));

    std::vector<ClusterCell> budgeted = clusterGrid();
    budgeted[0].config.failover.retry_budget.ratio = 0.1;
    EXPECT_NE(clusterSweepFingerprint(grid),
              clusterSweepFingerprint(budgeted));

    std::vector<ClusterCell> broken = clusterGrid();
    broken[0].config.failover.breaker.failure_threshold = 5;
    EXPECT_NE(clusterSweepFingerprint(grid),
              clusterSweepFingerprint(broken));
}

TEST(PlatformSweepResume, RestoresEveryCellBitForBit)
{
    TempFile ckpt("platform_resume");
    const std::vector<PlatformCell> grid = platformGrid();

    PlatformSweepOptions options;
    options.checkpoint_path = ckpt.path();
    const PlatformSweepReport first =
        runPlatformSweepReport(grid, 2, options);
    ASSERT_TRUE(first.allOk());
    EXPECT_EQ(first.restored, 0u);

    options.resume = true;
    const PlatformSweepReport resumed =
        runPlatformSweepReport(grid, 2, options);
    ASSERT_TRUE(resumed.allOk());
    EXPECT_EQ(resumed.restored, grid.size());
    EXPECT_FALSE(resumed.torn_tail);
    for (std::size_t i = 0; i < grid.size(); ++i) {
        EXPECT_TRUE(resumed.cells[i].restored);
        expectSamePlatformResult(first.cells[i].result,
                                 resumed.cells[i].result);
    }
}

TEST(PlatformSweepResume, RefusesACheckpointFromAnotherGrid)
{
    TempFile ckpt("platform_refuse");
    PlatformSweepOptions options;
    options.checkpoint_path = ckpt.path();
    ASSERT_TRUE(runPlatformSweepReport(platformGrid(), 2, options).allOk());

    std::vector<PlatformCell> other = platformGrid();
    other[0].server.memory_mb = 50.0;
    options.resume = true;
    EXPECT_THROW(runPlatformSweepReport(other, 2, options),
                 std::runtime_error);
}

TEST(ClusterSweepResume, RestoresEveryCellBitForBit)
{
    TempFile ckpt("cluster_resume");
    const std::vector<ClusterCell> grid = clusterGrid();

    PlatformSweepOptions options;
    options.checkpoint_path = ckpt.path();
    const ClusterSweepReport first =
        runClusterSweepReport(grid, 2, options);
    ASSERT_TRUE(first.allOk());

    options.resume = true;
    const ClusterSweepReport resumed =
        runClusterSweepReport(grid, 2, options);
    ASSERT_TRUE(resumed.allOk());
    EXPECT_EQ(resumed.restored, grid.size());
    for (std::size_t i = 0; i < grid.size(); ++i) {
        EXPECT_TRUE(resumed.cells[i].restored);
        expectSameClusterResult(first.cells[i].result,
                                resumed.cells[i].result);
    }
}

TEST(ClusterSweepResume, PartialJournalRerunsOnlyMissingCells)
{
    TempFile ckpt("cluster_partial");
    const std::vector<ClusterCell> grid = clusterGrid();
    const std::vector<std::string> keys = clusterCellKeys(grid);

    PlatformSweepOptions options;
    options.checkpoint_path = ckpt.path();
    const ClusterSweepReport first =
        runClusterSweepReport(grid, 2, options);
    ASSERT_TRUE(first.allOk());

    // Rewrite the journal with only the first cell's record, as if the
    // process was killed before the second cell finished.
    {
        CheckpointJournalWriter writer = CheckpointJournalWriter::beginFresh(
            ckpt.path(), clusterSweepFingerprint(grid));
        writer.append(encodeClusterCheckpointPayload(
            keys[0], first.cells[0].result));
    }

    options.resume = true;
    const ClusterSweepReport resumed =
        runClusterSweepReport(grid, 2, options);
    ASSERT_TRUE(resumed.allOk());
    EXPECT_EQ(resumed.restored, 1u);
    EXPECT_TRUE(resumed.cells[0].restored);
    EXPECT_FALSE(resumed.cells[1].restored);
    for (std::size_t i = 0; i < grid.size(); ++i)
        expectSameClusterResult(first.cells[i].result,
                                resumed.cells[i].result);
}

}  // namespace
}  // namespace faascache

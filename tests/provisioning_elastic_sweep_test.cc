// Checkpoint/resume for elastic-scaling sweeps
// (provisioning/elastic_sweep.h): the ElasticResult payload codec
// (timeline + embedded SimResult), grid fingerprints, and
// runElasticSweepReport() resume that restores results bit-for-bit.
#include "provisioning/elastic_sweep.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "trace/azure_model.h"

namespace faascache {
namespace {

/** Unique temp path per test; removed on destruction. */
class TempFile
{
  public:
    explicit TempFile(const std::string& tag)
        : path_(std::string(::testing::TempDir()) +
                "faascache_elastic_" + tag + ".ckpt")
    {
        std::remove(path_.c_str());
    }
    ~TempFile() { std::remove(path_.c_str()); }

    const std::string& path() const { return path_; }

  private:
    std::string path_;
};

const Trace&
diurnalWorkload()
{
    static const Trace kTrace = [] {
        AzureModelConfig config;
        config.seed = 17;
        config.num_functions = 40;
        config.duration_us = kHour;
        config.iat_median_sec = 30.0;
        config.max_rate_per_sec = 2.0;
        config.warm_median_ms = 100.0;
        config.warm_sigma = 0.8;
        config.mem_median_mb = 128.0;
        config.mem_sigma = 0.6;
        config.mem_min_mb = 64;
        config.mem_max_mb = 512;
        config.diurnal = true;
        config.diurnal_period_us = kHour;
        config.name = "elastic-sweep-test";
        return generateAzureTrace(config);
    }();
    return kTrace;
}

std::vector<ElasticCell>
elasticGrid()
{
    std::vector<ElasticCell> cells;
    for (PolicyKind kind : {PolicyKind::GreedyDual, PolicyKind::Ttl}) {
        ElasticCell cell;
        cell.trace = &diurnalWorkload();
        cell.kind = kind;
        cell.controller.target_miss_speed = 1.0;
        cell.controller.min_size_mb = 512;
        cell.controller.max_size_mb = 8 * 1024;
        cell.elastic.initial_size_mb = 2000;
        cells.push_back(cell);
    }
    return cells;
}

void
expectSameElasticResult(const ElasticResult& a, const ElasticResult& b)
{
    ASSERT_EQ(a.timeline.size(), b.timeline.size());
    for (std::size_t i = 0; i < a.timeline.size(); ++i) {
        EXPECT_EQ(a.timeline[i].time_us, b.timeline[i].time_us);
        // Bit-exact doubles: the hexfloat codec round-trips perfectly.
        EXPECT_EQ(a.timeline[i].cache_size_mb, b.timeline[i].cache_size_mb);
        EXPECT_EQ(a.timeline[i].arrival_rate, b.timeline[i].arrival_rate);
        EXPECT_EQ(a.timeline[i].miss_speed, b.timeline[i].miss_speed);
        EXPECT_EQ(a.timeline[i].smoothed_arrival,
                  b.timeline[i].smoothed_arrival);
        EXPECT_EQ(a.timeline[i].available_fraction,
                  b.timeline[i].available_fraction);
    }
    EXPECT_EQ(a.sim.policy_name, b.sim.policy_name);
    EXPECT_EQ(a.sim.warm_starts, b.sim.warm_starts);
    EXPECT_EQ(a.sim.cold_starts, b.sim.cold_starts);
    EXPECT_EQ(a.sim.dropped, b.sim.dropped);
    EXPECT_EQ(a.sim.evictions, b.sim.evictions);
    EXPECT_EQ(a.sim.actual_exec_us, b.sim.actual_exec_us);
    EXPECT_EQ(a.sim.per_function, b.sim.per_function);
}

TEST(ElasticCheckpointCodec, RoundTripsARealRun)
{
    const ElasticCell cell = elasticGrid()[0];
    ElasticSweepReport report = runElasticSweepReport({cell}, 1);
    ASSERT_TRUE(report.allOk());
    const ElasticResult& result = report.cells[0].result;
    ASSERT_FALSE(result.timeline.empty());

    const std::string payload =
        encodeElasticCheckpointPayload("fig9 cell", result);
    std::string key;
    ElasticResult decoded;
    ASSERT_TRUE(decodeElasticCheckpointPayload(payload, &key, &decoded));
    EXPECT_EQ(key, "fig9 cell");
    expectSameElasticResult(result, decoded);
}

TEST(ElasticCheckpointCodec, RejectsTruncationAndKeyMismatch)
{
    const ElasticCell cell = elasticGrid()[0];
    ElasticSweepReport report = runElasticSweepReport({cell}, 1);
    ASSERT_TRUE(report.allOk());
    const std::string payload = encodeElasticCheckpointPayload(
        "a", report.cells[0].result);

    std::string key;
    ElasticResult decoded;
    EXPECT_FALSE(decodeElasticCheckpointPayload(
        payload.substr(0, payload.size() / 3), &key, &decoded));
    EXPECT_FALSE(decodeElasticCheckpointPayload(payload + " junk", &key,
                                                &decoded));
    EXPECT_FALSE(decodeElasticCheckpointPayload("", &key, &decoded));
}

TEST(ElasticFingerprint, SensitiveToControllerAndElasticKnobs)
{
    const std::vector<ElasticCell> grid = elasticGrid();
    EXPECT_EQ(elasticSweepFingerprint(grid),
              elasticSweepFingerprint(elasticGrid()));

    std::vector<ElasticCell> retargeted = elasticGrid();
    retargeted[0].controller.target_miss_speed = 2.0;
    EXPECT_NE(elasticSweepFingerprint(grid),
              elasticSweepFingerprint(retargeted));

    std::vector<ElasticCell> resized = elasticGrid();
    resized[1].elastic.initial_size_mb += 500;
    EXPECT_NE(elasticSweepFingerprint(grid),
              elasticSweepFingerprint(resized));

    std::vector<ElasticCell> lossy = elasticGrid();
    lossy[0].elastic.capacity_loss.push_back(
        {10 * kMinute, 20 * kMinute, 0.5});
    EXPECT_NE(elasticSweepFingerprint(grid),
              elasticSweepFingerprint(lossy));
}

TEST(ElasticSweepResume, RestoresEveryCellBitForBit)
{
    TempFile ckpt("resume");
    const std::vector<ElasticCell> grid = elasticGrid();

    SweepOptions options;
    options.checkpoint_path = ckpt.path();
    const ElasticSweepReport first =
        runElasticSweepReport(grid, 2, options);
    ASSERT_TRUE(first.allOk());
    EXPECT_EQ(first.restored, 0u);

    options.resume = true;
    const ElasticSweepReport resumed =
        runElasticSweepReport(grid, 2, options);
    ASSERT_TRUE(resumed.allOk());
    EXPECT_EQ(resumed.restored, grid.size());
    EXPECT_FALSE(resumed.torn_tail);
    for (std::size_t i = 0; i < grid.size(); ++i) {
        EXPECT_TRUE(resumed.cells[i].restored);
        expectSameElasticResult(first.cells[i].result,
                                resumed.cells[i].result);
    }
}

TEST(ElasticSweepResume, RefusesACheckpointFromAnotherGrid)
{
    TempFile ckpt("refuse");
    SweepOptions options;
    options.checkpoint_path = ckpt.path();
    ASSERT_TRUE(runElasticSweepReport(elasticGrid(), 2, options).allOk());

    std::vector<ElasticCell> other = elasticGrid();
    other[0].elastic.control_period_us = 5 * kMinute;
    options.resume = true;
    EXPECT_THROW(runElasticSweepReport(other, 2, options),
                 std::runtime_error);
}

}  // namespace
}  // namespace faascache

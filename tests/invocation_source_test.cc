// Cursor-contract battery for the streaming trace substrate
// (DESIGN.md §4h): every InvocationSource implementation must honor
// the peek/next/reset contract, report honest count hints, and — for
// the streamed twins of materialized operations (subset, samplers,
// generators, fingerprints, sweep cells) — reproduce the materialized
// result exactly.
#include "trace/invocation_source.h"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/sweep_checkpoint.h"
#include "sim/sweep_runner.h"
#include "trace/azure_model.h"
#include "trace/function_spec.h"
#include "trace/generated_source.h"
#include "trace/patterns.h"
#include "trace/samplers.h"
#include "trace/trace.h"

namespace faascache {
namespace {

Trace
smallTrace()
{
    std::vector<FunctionSpec> specs;
    std::vector<TimeUs> iats;
    for (FunctionId id = 0; id < 6; ++id) {
        specs.push_back(makeFunction(
            id, "fn" + std::to_string(id),
            64.0 + 32.0 * static_cast<double>(id), fromMillis(100),
            fromMillis(500)));
        iats.push_back(fromSeconds(2 + id));
    }
    return makePoissonTrace(specs, iats, 3 * kMinute, 0xC0FFEEu,
                            "source-contract");
}

void
expectTracesEqual(const Trace& got, const Trace& want)
{
    EXPECT_EQ(got.name(), want.name());
    ASSERT_EQ(got.functions().size(), want.functions().size());
    for (std::size_t i = 0; i < want.functions().size(); ++i) {
        const FunctionSpec& g = got.functions()[i];
        const FunctionSpec& w = want.functions()[i];
        EXPECT_EQ(g.id, w.id);
        EXPECT_EQ(g.name, w.name);
        EXPECT_EQ(g.mem_mb, w.mem_mb);
        EXPECT_EQ(g.cpu_units, w.cpu_units);
        EXPECT_EQ(g.io_units, w.io_units);
        EXPECT_EQ(g.warm_us, w.warm_us);
        EXPECT_EQ(g.cold_us, w.cold_us);
    }
    ASSERT_EQ(got.invocations().size(), want.invocations().size());
    for (std::size_t i = 0; i < want.invocations().size(); ++i)
        EXPECT_EQ(got.invocations()[i], want.invocations()[i])
            << "invocation " << i;
}

TEST(TraceSourceContract, PeekNextResetAndHint)
{
    const Trace trace = smallTrace();
    TraceSource source(trace);

    EXPECT_EQ(source.name(), trace.name());
    EXPECT_EQ(source.functions().size(), trace.functions().size());
    EXPECT_TRUE(source.countHint().exact);
    EXPECT_EQ(source.countHint().count, trace.invocations().size());

    Invocation peeked, consumed;
    ASSERT_TRUE(source.peek(peeked));
    // peek is idempotent and does not consume.
    Invocation peeked_again;
    ASSERT_TRUE(source.peek(peeked_again));
    EXPECT_EQ(peeked, peeked_again);
    ASSERT_TRUE(source.next(consumed));
    EXPECT_EQ(peeked, consumed);
    EXPECT_EQ(consumed, trace.invocations()[0]);

    // Drain; stream must be non-decreasing and exactly the trace.
    std::size_t count = 1;
    TimeUs prev = consumed.arrival_us;
    while (source.next(consumed)) {
        EXPECT_GE(consumed.arrival_us, prev);
        EXPECT_EQ(consumed, trace.invocations()[count]);
        prev = consumed.arrival_us;
        ++count;
    }
    EXPECT_EQ(count, trace.invocations().size());
    // Exhausted: peek and next fail and leave `out` untouched.
    Invocation untouched = consumed;
    EXPECT_FALSE(source.peek(untouched));
    EXPECT_FALSE(source.next(untouched));
    EXPECT_EQ(untouched, consumed);

    // reset() rewinds fully, any number of times.
    for (int round = 0; round < 2; ++round) {
        source.reset();
        ASSERT_TRUE(source.next(consumed));
        EXPECT_EQ(consumed, trace.invocations()[0]);
    }
}

TEST(TraceSourceContract, MaterializeRoundTrips)
{
    const Trace trace = smallTrace();
    TraceSource source(trace);
    // Partially consume first: materialize must reset before draining.
    Invocation inv;
    ASSERT_TRUE(source.next(inv));
    expectTracesEqual(materializeSource(source), trace);
    // ... and reset after, so the source is reusable.
    ASSERT_TRUE(source.peek(inv));
    EXPECT_EQ(inv, trace.invocations()[0]);
}

TEST(TraceSourceContract, CountsPerFunctionMatchTrace)
{
    const Trace trace = smallTrace();
    TraceSource source(trace);
    EXPECT_EQ(countInvocationsPerFunction(source),
              trace.invocationCounts());
}

TEST(TeeSourceContract, ObserverFiresOnNextOnly)
{
    const Trace trace = smallTrace();
    TraceSource inner(trace);
    std::vector<Invocation> seen;
    TeeSource tee(inner,
                  [&seen](const Invocation& inv) { seen.push_back(inv); });

    Invocation inv;
    ASSERT_TRUE(tee.peek(inv));
    EXPECT_TRUE(seen.empty()) << "peek must not observe";
    while (tee.next(inv)) {
    }
    ASSERT_EQ(seen.size(), trace.invocations().size());
    for (std::size_t i = 0; i < seen.size(); ++i)
        EXPECT_EQ(seen[i], trace.invocations()[i]);
}

TEST(SubsetSourceContract, MatchesMaterializedSubset)
{
    const Trace trace = smallTrace();
    const std::vector<FunctionId> keep = {1, 3, 4};
    const Trace want = trace.subset(keep, "sub");

    TraceSource inner(trace);
    SubsetSource subset(inner, keep, "sub");
    EXPECT_TRUE(subset.countHint().exact);
    EXPECT_EQ(subset.countHint().count, want.invocations().size());
    expectTracesEqual(materializeSource(subset), want);
}

TEST(SubsetSourceContract, DuplicateKeepEntriesAreSkipped)
{
    const Trace trace = smallTrace();
    const Trace want = trace.subset({2, 5}, "dup");
    TraceSource inner(trace);
    SubsetSource subset(inner, {2, 5, 2, 5, 5}, "dup");
    expectTracesEqual(materializeSource(subset), want);
}

TEST(SubsetSourceContract, UnknownFunctionIdThrows)
{
    const Trace trace = smallTrace();
    TraceSource inner(trace);
    EXPECT_THROW(SubsetSource(inner, {99}, "bad"), std::out_of_range);
    EXPECT_THROW(trace.subset({99}, "bad"), std::out_of_range);
}

// Satellite regression: subset() with an empty keep list is a valid
// boundary — zero functions, zero invocations, not a crash.
TEST(SubsetBoundary, ZeroKeptFunctions)
{
    const Trace trace = smallTrace();
    const Trace empty = trace.subset({}, "none");
    EXPECT_TRUE(empty.validate());
    EXPECT_EQ(empty.functions().size(), 0u);
    EXPECT_EQ(empty.invocations().size(), 0u);

    TraceSource inner(trace);
    SubsetSource subset(inner, {}, "none");
    EXPECT_EQ(subset.countHint().count, 0u);
    Invocation inv;
    EXPECT_FALSE(subset.peek(inv));
    EXPECT_FALSE(subset.next(inv));
}

TEST(Samplers, StreamingIdsMatchMaterializedSamples)
{
    AzureModelConfig config;
    config.seed = 11;
    config.num_functions = 200;
    config.duration_us = 30 * kMinute;
    config.iat_median_sec = 20.0;
    const Trace pop = generateAzureTrace(config);
    TraceSource source(pop);

    expectTracesEqual(
        pop.subset(sampleRareIds(source, 40, 7), "rare"),
        sampleRare(pop, 40, 7));
    expectTracesEqual(
        pop.subset(sampleRepresentativeIds(source, 40, 7),
                   "representative"),
        sampleRepresentative(pop, 40, 7));
    expectTracesEqual(
        pop.subset(sampleRandomIds(source, 40, 7), "random"),
        sampleRandom(pop, 40, 7));
}

TEST(GeneratedSources, PoissonMatchesMaterializedGenerator)
{
    std::vector<FunctionSpec> specs;
    std::vector<TimeUs> iats;
    for (FunctionId id = 0; id < 8; ++id) {
        specs.push_back(makeFunction(id, "g" + std::to_string(id), 128.0,
                                     fromMillis(50), fromMillis(300)));
        iats.push_back(fromSeconds(1 + id % 3));
    }
    const Trace want =
        makePoissonTrace(specs, iats, 2 * kMinute, 99, "poisson-gen");
    const auto source =
        makePoissonSource(specs, iats, 2 * kMinute, 99, "poisson-gen");
    EXPECT_TRUE(source->countHint().exact);
    EXPECT_EQ(source->countHint().count, want.invocations().size());
    expectTracesEqual(materializeSource(*source), want);
}

TEST(GeneratedSources, AzureMatchesMaterializedGenerator)
{
    AzureModelConfig config;
    config.seed = 23;
    config.num_functions = 120;
    config.duration_us = 20 * kMinute;
    config.iat_median_sec = 15.0;
    const Trace want = generateAzureTrace(config);
    const auto source = makeAzureSource(config);
    EXPECT_EQ(source->countHint().count, want.invocations().size());
    expectTracesEqual(materializeSource(*source), want);
}

TEST(Fingerprints, SourceFingerprintEqualsTraceFingerprint)
{
    const Trace trace = smallTrace();
    TraceSource source(trace);
    // Consume a little first: sourceFingerprint must reset.
    Invocation inv;
    ASSERT_TRUE(source.next(inv));
    EXPECT_EQ(sourceFingerprint(source), traceFingerprint(trace));
    // Left reset afterwards.
    ASSERT_TRUE(source.peek(inv));
    EXPECT_EQ(inv, trace.invocations()[0]);

    // Sensitive to the stream, not just the catalog.
    const Trace other = trace.subset({0, 1, 2, 3, 4}, trace.name());
    EXPECT_NE(traceFingerprint(other), traceFingerprint(trace));
}

TEST(SweepStreamCells, StreamedCellMatchesTraceCell)
{
    const Trace trace = smallTrace();

    std::vector<SweepCell> trace_cells;
    std::vector<SweepCell> stream_cells;
    for (const MemMb memory : {512.0, 1024.0}) {
        trace_cells.push_back(
            makeCell(trace, PolicyKind::GreedyDual, memory));
        stream_cells.push_back(makeStreamCell(
            [&trace]() { return std::make_unique<TraceSource>(trace); },
            PolicyKind::GreedyDual, memory));
    }
    const std::vector<SimResult> want = runSweep(trace_cells, 2);
    const std::vector<SimResult> got = runSweep(stream_cells, 2);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < want.size(); ++i)
        EXPECT_EQ(encodeCheckpointPayload("cell", got[i]),
                  encodeCheckpointPayload("cell", want[i]))
            << "cell " << i;
}

TEST(SweepStreamCells, GridValidationRejectsMalformedCells)
{
    const Trace trace = smallTrace();
    SweepCell both = makeCell(trace, PolicyKind::GreedyDual, 512.0);
    both.make_source = [&trace]() {
        return std::make_unique<TraceSource>(trace);
    };
    EXPECT_THROW(runSweep({both}), std::invalid_argument);

    SweepCell neither;
    neither.make_policy = []() {
        return makePolicy(PolicyKind::GreedyDual, {});
    };
    EXPECT_THROW(runSweep({neither}), std::invalid_argument);
}

}  // namespace
}  // namespace faascache

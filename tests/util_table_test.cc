#include "util/table.h"

#include <gtest/gtest.h>

#include <sstream>

namespace faascache {
namespace {

TEST(TablePrinter, AlignsColumns)
{
    TablePrinter table({"name", "value"});
    table.addRow({"x", "1"});
    table.addRow({"longer-name", "22"});
    std::ostringstream out;
    table.print(out);
    const std::string text = out.str();
    EXPECT_NE(text.find("name"), std::string::npos);
    EXPECT_NE(text.find("longer-name"), std::string::npos);
    // Header separator present.
    EXPECT_NE(text.find("---"), std::string::npos);
}

TEST(TablePrinter, ToleratesShortRows)
{
    TablePrinter table({"a", "b", "c"});
    table.addRow({"only-one"});
    std::ostringstream out;
    table.print(out);
    EXPECT_NE(out.str().find("only-one"), std::string::npos);
}

TEST(TablePrinter, ToleratesExtraCells)
{
    TablePrinter table({"a"});
    table.addRow({"1", "2", "3"});
    std::ostringstream out;
    table.print(out);
    EXPECT_NE(out.str().find("3"), std::string::npos);
}

TEST(FormatDouble, Decimals)
{
    EXPECT_EQ(formatDouble(3.14159, 2), "3.14");
    EXPECT_EQ(formatDouble(3.14159, 0), "3");
    EXPECT_EQ(formatDouble(-1.5, 1), "-1.5");
    EXPECT_EQ(formatDouble(0.0, 3), "0.000");
}

}  // namespace
}  // namespace faascache

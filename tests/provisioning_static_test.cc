#include "provisioning/static_provisioner.h"

#include <gtest/gtest.h>

#include "trace/azure_model.h"

namespace faascache {
namespace {

Trace
workload()
{
    AzureModelConfig config;
    config.seed = 13;
    config.num_functions = 200;
    config.duration_us = kHour;
    config.iat_median_sec = 45.0;
    return generateAzureTrace(config);
}

TEST(StaticProvisioner, PlanAchievesTarget)
{
    const StaticProvisioner prov = StaticProvisioner::fromTrace(workload());
    const ProvisioningPlan plan = prov.plan(0.7, 256 * 1024);
    EXPECT_GT(plan.target_size_mb, 0.0);
    EXPECT_GE(plan.achieved_hit_ratio,
              std::min(0.7, plan.max_hit_ratio) - 1e-9);
}

TEST(StaticProvisioner, HigherTargetNeedsMoreMemory)
{
    const StaticProvisioner prov = StaticProvisioner::fromTrace(workload());
    const ProvisioningPlan lo = prov.plan(0.5, 256 * 1024);
    const ProvisioningPlan hi = prov.plan(0.9, 256 * 1024);
    EXPECT_LE(lo.target_size_mb, hi.target_size_mb);
}

TEST(StaticProvisioner, KneeWithinBounds)
{
    const StaticProvisioner prov = StaticProvisioner::fromTrace(workload());
    const MemMb max_mb = 256 * 1024;
    const ProvisioningPlan plan = prov.plan(0.9, max_mb);
    EXPECT_GT(plan.knee_size_mb, 0.0);
    EXPECT_LE(plan.knee_size_mb, max_mb);
    EXPECT_GE(plan.knee_hit_ratio, 0.0);
    EXPECT_LE(plan.knee_hit_ratio, 1.0);
}

TEST(StaticProvisioner, MaxHitRatioReflectsCompulsoryMisses)
{
    const Trace t = workload();
    const StaticProvisioner prov = StaticProvisioner::fromTrace(t);
    const ProvisioningPlan plan = prov.plan(0.9, 256 * 1024);
    const double expected = 1.0 -
        static_cast<double>(t.functions().size()) /
            static_cast<double>(t.invocations().size());
    EXPECT_NEAR(plan.max_hit_ratio, expected, 1e-9);
}

}  // namespace
}  // namespace faascache

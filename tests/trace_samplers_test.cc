#include "trace/samplers.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "trace/azure_model.h"

namespace faascache {
namespace {

Trace
population()
{
    AzureModelConfig config;
    config.seed = 11;
    config.num_functions = 300;
    config.duration_us = 30 * kMinute;
    config.iat_median_sec = 20.0;
    return generateAzureTrace(config);
}

TEST(Samplers, RareSampleHasRequestedSize)
{
    const Trace pop = population();
    const Trace rare = sampleRare(pop, 50, 1);
    EXPECT_EQ(rare.functions().size(), 50u);
    EXPECT_TRUE(rare.validate());
    EXPECT_EQ(rare.name(), "rare");
}

TEST(Samplers, RareFunctionsAreActuallyRare)
{
    const Trace pop = population();
    const Trace rare = sampleRare(pop, 40, 1);
    const auto pop_counts = pop.invocationCounts();
    std::vector<std::size_t> sorted = pop_counts;
    std::sort(sorted.begin(), sorted.end());
    const std::size_t median_count = sorted[sorted.size() / 2];

    // Mean invocation count of the rare sample is below the population
    // median (rare functions come from the infrequent half).
    const auto rare_counts = rare.invocationCounts();
    const double mean_rare =
        static_cast<double>(std::accumulate(rare_counts.begin(),
                                            rare_counts.end(), 0ul)) /
        static_cast<double>(rare_counts.size());
    EXPECT_LE(mean_rare, static_cast<double>(median_count) * 1.5);
}

TEST(Samplers, RepresentativeCoversQuartiles)
{
    const Trace pop = population();
    const Trace rep = sampleRepresentative(pop, 40, 1);
    EXPECT_EQ(rep.functions().size(), 40u);
    EXPECT_TRUE(rep.validate());

    // The sample must contain both low- and high-frequency functions:
    // its count spread should cover most of the population's range.
    const auto counts = rep.invocationCounts();
    const auto [min_it, max_it] =
        std::minmax_element(counts.begin(), counts.end());
    const auto pop_counts = pop.invocationCounts();
    const auto pop_max = *std::max_element(pop_counts.begin(),
                                           pop_counts.end());
    EXPECT_GT(*max_it, pop_max / 4);
    EXPECT_LT(*min_it, 10u);
}

TEST(Samplers, RepresentativeHandlesNonMultipleOfFour)
{
    const Trace pop = population();
    const Trace rep = sampleRepresentative(pop, 41, 1);
    EXPECT_EQ(rep.functions().size(), 41u);
}

TEST(Samplers, RandomSampleSizeAndValidity)
{
    const Trace pop = population();
    const Trace rnd = sampleRandom(pop, 60, 2);
    EXPECT_EQ(rnd.functions().size(), 60u);
    EXPECT_TRUE(rnd.validate());
    EXPECT_TRUE(rnd.isSorted());
}

TEST(Samplers, DeterministicInSeed)
{
    const Trace pop = population();
    const Trace a = sampleRandom(pop, 30, 5);
    const Trace b = sampleRandom(pop, 30, 5);
    ASSERT_EQ(a.invocations().size(), b.invocations().size());
    for (std::size_t i = 0; i < a.invocations().size(); ++i)
        EXPECT_EQ(a.invocations()[i], b.invocations()[i]);
}

TEST(Samplers, DifferentSeedsDiffer)
{
    const Trace pop = population();
    const Trace a = sampleRandom(pop, 30, 5);
    const Trace b = sampleRandom(pop, 30, 6);
    bool differ = a.invocations().size() != b.invocations().size();
    if (!differ) {
        for (std::size_t i = 0; i < a.invocations().size(); ++i) {
            if (!(a.invocations()[i] == b.invocations()[i])) {
                differ = true;
                break;
            }
        }
    }
    EXPECT_TRUE(differ);
}

TEST(Samplers, CountLargerThanPopulationClamps)
{
    const Trace pop = population();
    const Trace all = sampleRandom(pop, 10'000, 1);
    EXPECT_EQ(all.functions().size(), pop.functions().size());
}

}  // namespace
}  // namespace faascache

#include "util/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace faascache {
namespace {

TEST(Rng, SameSeedSameStream)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.nextU64(), b.nextU64());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.nextU64() == b.nextU64())
            ++same;
    }
    EXPECT_LT(same, 3);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10'000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformRangeRespected)
{
    Rng rng(7);
    for (int i = 0; i < 1'000; ++i) {
        const double u = rng.uniform(-5.0, 3.0);
        EXPECT_GE(u, -5.0);
        EXPECT_LT(u, 3.0);
    }
}

TEST(Rng, UniformMeanNearHalf)
{
    Rng rng(11);
    double sum = 0;
    const int n = 100'000;
    for (int i = 0; i < n; ++i)
        sum += rng.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntWithinBound)
{
    Rng rng(3);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1'000; ++i) {
        const std::uint64_t v = rng.uniformInt(10);
        EXPECT_LT(v, 10u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 10u);  // all values hit
}

TEST(Rng, UniformIntOneIsAlwaysZero)
{
    Rng rng(3);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(rng.uniformInt(1), 0u);
}

TEST(Rng, ExponentialMeanMatches)
{
    Rng rng(17);
    double sum = 0;
    const int n = 200'000;
    for (int i = 0; i < n; ++i)
        sum += rng.exponential(4.0);
    EXPECT_NEAR(sum / n, 4.0, 0.1);
}

TEST(Rng, ExponentialNonNegative)
{
    Rng rng(17);
    for (int i = 0; i < 1'000; ++i)
        EXPECT_GE(rng.exponential(0.001), 0.0);
}

TEST(Rng, NormalMoments)
{
    Rng rng(23);
    const int n = 200'000;
    double sum = 0, sq = 0;
    for (int i = 0; i < n; ++i) {
        const double v = rng.normal();
        sum += v;
        sq += v * v;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sq / n, 1.0, 0.02);
}

TEST(Rng, NormalShifted)
{
    Rng rng(29);
    const int n = 100'000;
    double sum = 0;
    for (int i = 0; i < n; ++i)
        sum += rng.normal(10.0, 2.0);
    EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Rng, LognormalMedian)
{
    Rng rng(31);
    std::vector<double> values;
    const int n = 50'001;
    for (int i = 0; i < n; ++i)
        values.push_back(rng.lognormal(std::log(7.0), 1.0));
    std::sort(values.begin(), values.end());
    EXPECT_NEAR(values[n / 2], 7.0, 0.3);
}

TEST(Rng, ParetoBoundedBelowByScale)
{
    Rng rng(37);
    for (int i = 0; i < 10'000; ++i)
        EXPECT_GE(rng.pareto(2.0, 1.5), 2.0);
}

TEST(Rng, PoissonZeroMean)
{
    Rng rng(41);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(rng.poisson(0.0), 0);
}

TEST(Rng, PoissonSmallMean)
{
    Rng rng(43);
    const int n = 200'000;
    std::int64_t sum = 0;
    for (int i = 0; i < n; ++i)
        sum += rng.poisson(2.5);
    EXPECT_NEAR(static_cast<double>(sum) / n, 2.5, 0.05);
}

TEST(Rng, PoissonLargeMeanUsesNormalApprox)
{
    Rng rng(47);
    const int n = 50'000;
    std::int64_t sum = 0;
    for (int i = 0; i < n; ++i) {
        const std::int64_t v = rng.poisson(100.0);
        EXPECT_GE(v, 0);
        sum += v;
    }
    EXPECT_NEAR(static_cast<double>(sum) / n, 100.0, 0.5);
}

TEST(Rng, WeightedIndexRespectsWeights)
{
    Rng rng(53);
    std::vector<double> weights = {1.0, 0.0, 3.0};
    int counts[3] = {0, 0, 0};
    for (int i = 0; i < 40'000; ++i)
        ++counts[rng.weightedIndex(weights)];
    EXPECT_EQ(counts[1], 0);
    EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.15);
}

TEST(Rng, PermutationIsPermutation)
{
    Rng rng(59);
    const auto perm = rng.permutation(100);
    std::set<std::size_t> seen(perm.begin(), perm.end());
    EXPECT_EQ(seen.size(), 100u);
    EXPECT_EQ(*seen.begin(), 0u);
    EXPECT_EQ(*seen.rbegin(), 99u);
}

TEST(Rng, PermutationEmpty)
{
    Rng rng(59);
    EXPECT_TRUE(rng.permutation(0).empty());
}

TEST(Rng, SplitProducesIndependentStream)
{
    Rng a(61);
    Rng child = a.split();
    // The child differs from a fresh copy of the parent's continuation.
    Rng b(61);
    b.split();
    EXPECT_NE(child.nextU64(), a.nextU64());
}

TEST(Rng, HashMixDeterministicAndSpread)
{
    EXPECT_EQ(Rng::hashMix(42), Rng::hashMix(42));
    std::set<std::uint64_t> values;
    for (std::uint64_t k = 0; k < 1'000; ++k)
        values.insert(Rng::hashMix(k));
    EXPECT_EQ(values.size(), 1'000u);
}

}  // namespace
}  // namespace faascache

// Round-trip battery for the trace-compile pipeline (DESIGN.md §4h):
// CSV text → Trace → .ftrace → mmap stream → materialized oracle must
// be lossless at every hop, including bit-exact doubles and the FIFO
// order of same-timestamp invocations. These are the exact library
// calls `tools/trace_compile.cc` makes; the CLI itself is smoked in CI
// against the same guarantees.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "trace/ftrace_format.h"
#include "trace/function_spec.h"
#include "trace/invocation_source.h"
#include "trace/trace.h"
#include "trace/trace_io.h"

namespace faascache {
namespace {

class TempPath
{
  public:
    explicit TempPath(const std::string& tag)
        : path_(std::string(::testing::TempDir()) +
                "faascache_roundtrip_" + tag)
    {
        std::remove(path_.c_str());
    }
    ~TempPath() { std::remove(path_.c_str()); }

    const std::string& path() const { return path_; }

  private:
    std::string path_;
};

/** A hand-written CSV with awkward values: non-round doubles, v2
 *  cpu/io columns, and bursts of invocations sharing one timestamp
 *  across different functions (FIFO order must survive). */
std::string
fixtureCsv()
{
    return "faascache-trace,2,roundtrip-fixture\n"
           "function,0,alpha,170.25,80000,400000,1.5,0.25\n"
           "function,1,beta,96.125,50000,250000,1,0\n"
           "function,2,gamma,1024.5,200000,1200000,2,0.75\n"
           "invocation,0,0\n"
           "invocation,1,0\n"
           "invocation,2,0\n"
           "invocation,2,500000\n"
           "invocation,0,500000\n"
           "invocation,1,500000\n"
           "invocation,1,500001\n"
           "invocation,0,1000000\n";
}

TEST(TraceCompileRoundTrip, CsvToFtraceToOracleIsLossless)
{
    const Trace want = readTrace(fixtureCsv());
    ASSERT_TRUE(want.validate());
    ASSERT_EQ(want.invocations().size(), 8u);

    TempPath ftrace("lossless.ftrace");
    TraceSource source(want);
    // Chunk capacity 4 splits the same-timestamp burst across a chunk
    // boundary — order must still survive.
    ASSERT_EQ(writeFtraceFile(ftrace.path(), source, 4), 8u);

    FtraceSource mapped(ftrace.path());
    const Trace got = materializeSource(mapped);

    EXPECT_EQ(got.name(), want.name());
    ASSERT_EQ(got.functions().size(), want.functions().size());
    for (std::size_t f = 0; f < want.functions().size(); ++f) {
        const FunctionSpec& g = got.functions()[f];
        const FunctionSpec& w = want.functions()[f];
        EXPECT_EQ(g.name, w.name);
        // Bit-exact: .ftrace stores raw IEEE-754 patterns and the CSV
        // codec prints enough digits to round-trip.
        EXPECT_EQ(g.mem_mb, w.mem_mb);
        EXPECT_EQ(g.cpu_units, w.cpu_units);
        EXPECT_EQ(g.io_units, w.io_units);
        EXPECT_EQ(g.warm_us, w.warm_us);
        EXPECT_EQ(g.cold_us, w.cold_us);
    }
    ASSERT_EQ(got.invocations().size(), want.invocations().size());
    for (std::size_t i = 0; i < want.invocations().size(); ++i)
        EXPECT_EQ(got.invocations()[i], want.invocations()[i])
            << "invocation " << i
            << " (same-timestamp FIFO order must be preserved)";
}

TEST(TraceCompileRoundTrip, CsvEmittedBackIsByteStable)
{
    // trace → CSV → trace → CSV reaches a fixed point: emitting the
    // decompiled trace again produces identical bytes (the CLI's
    // --emit-csv / --csv cycle keys on this).
    const Trace first = readTrace(fixtureCsv());
    std::ostringstream out1;
    writeTrace(first, out1);
    const Trace second = readTrace(out1.str());
    std::ostringstream out2;
    writeTrace(second, out2);
    EXPECT_EQ(out1.str(), out2.str());
}

TEST(TraceCompileRoundTrip, MalformedCsvReportsLineNumbers)
{
    struct Case
    {
        std::string csv;
        std::string want_line;
    };
    const std::vector<Case> cases = {
        {"faascache-trace,2,x\nfunction,0,a,128,1,2\n"
         "invocation,0,nonsense\n",
         "line 3"},
        {"faascache-trace,2,x\nfunction,zero,a,128,1,2\n", "line 2"},
        {"not-a-trace,9,x\n", "line 1"},
    };
    for (const Case& c : cases) {
        try {
            readTrace(c.csv);
            FAIL() << "malformed CSV accepted: " << c.csv;
        } catch (const std::runtime_error& error) {
            EXPECT_NE(std::string(error.what()).find(c.want_line),
                      std::string::npos)
                << "error '" << error.what()
                << "' does not carry the expected '" << c.want_line
                << "'";
        }
    }
}

TEST(TraceCompileRoundTrip, EmptyInvocationStreamRoundTrips)
{
    // A catalog-only trace (zero invocations) is a valid boundary for
    // the compiler: header says zero chunks, reader yields nothing.
    Trace want("empty");
    want.addFunction(
        makeFunction(0, "only", 64.0, fromMillis(10), fromMillis(50)));
    ASSERT_TRUE(want.validate());

    TempPath ftrace("empty.ftrace");
    TraceSource source(want);
    ASSERT_EQ(writeFtraceFile(ftrace.path(), source), 0u);

    FtraceSource mapped(ftrace.path());
    EXPECT_EQ(mapped.numChunks(), 0u);
    Invocation inv;
    EXPECT_FALSE(mapped.next(inv));
    const Trace got = materializeSource(mapped);
    EXPECT_EQ(got.functions().size(), 1u);
    EXPECT_EQ(got.invocations().size(), 0u);
}

}  // namespace
}  // namespace faascache

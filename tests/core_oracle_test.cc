#include "core/oracle_policy.h"

#include <gtest/gtest.h>

#include "core/container_pool.h"
#include "core/greedy_dual.h"
#include "core/lru_policy.h"
#include "core/ttl_policy.h"
#include "sim/simulator.h"
#include "trace/azure_model.h"

namespace faascache {
namespace {

FunctionSpec
fn(FunctionId id, MemMb mem = 100)
{
    return makeFunction(id, "fn" + std::to_string(id), mem, fromMillis(50),
                        fromMillis(200));
}

Trace
abcTrace()
{
    Trace t("abc");
    t.addFunction(fn(0));
    t.addFunction(fn(1));
    t.addFunction(fn(2));
    // A B C, then A soon, C later, B never again.
    t.addInvocation(0, 0);
    t.addInvocation(1, kSecond);
    t.addInvocation(2, 2 * kSecond);
    t.addInvocation(0, 10 * kSecond);
    t.addInvocation(2, kMinute);
    return t;
}

TEST(OraclePolicy, NextUseLookup)
{
    const Trace t = abcTrace();
    OraclePolicy oracle(t);
    EXPECT_EQ(oracle.nextUseAfter(0, 0), 10 * kSecond);
    EXPECT_EQ(oracle.nextUseAfter(0, 10 * kSecond), -1);
    EXPECT_EQ(oracle.nextUseAfter(1, kSecond), -1);
    EXPECT_EQ(oracle.nextUseAfter(2, 5 * kSecond), kMinute);
    EXPECT_EQ(oracle.nextUseAfter(99, 0), -1);
}

TEST(OraclePolicy, EvictsNeverUsedAgainFirst)
{
    const Trace t = abcTrace();
    OraclePolicy oracle(t);
    ContainerPool pool(10'000);
    for (FunctionId id : {0u, 1u, 2u}) {
        const FunctionSpec spec = t.function(id);
        oracle.onInvocationArrival(spec, id * kSecond);
        Container& c = pool.add(spec, id * kSecond);
        c.startInvocation(id * kSecond, id * kSecond + spec.cold_us);
        oracle.onColdStart(c, spec, id * kSecond);
        c.finishInvocation();
    }
    // At t=3s: B (fn 1) is never used again -> first victim; then C
    // (next use at 60 s) before A (next use at 10 s).
    const auto victims = oracle.selectVictims(pool, 250, 3 * kSecond);
    ASSERT_EQ(victims.size(), 3u);
    EXPECT_EQ(pool.get(victims[0])->function(), 1u);
    EXPECT_EQ(pool.get(victims[1])->function(), 2u);
    EXPECT_EQ(pool.get(victims[2])->function(), 0u);
}

TEST(OraclePolicy, TieBreaksTowardLargerContainers)
{
    Trace t("t");
    t.addFunction(fn(0, 100));
    t.addFunction(fn(1, 400));
    t.addInvocation(0, 0);
    t.addInvocation(1, 0);
    OraclePolicy oracle(t);
    ContainerPool pool(10'000);
    for (FunctionId id : {0u, 1u}) {
        const FunctionSpec spec = t.function(id);
        Container& c = pool.add(spec, 0);
        c.startInvocation(0, spec.cold_us);
        oracle.onColdStart(c, spec, 0);
        c.finishInvocation();
    }
    // Both never used again: the 400 MB container goes first.
    const auto victims = oracle.selectVictims(pool, 50, kSecond);
    ASSERT_GE(victims.size(), 1u);
    EXPECT_EQ(pool.get(victims[0])->function(), 1u);
}

TEST(OraclePolicy, NeverWorseThanOnlinePoliciesOnAverage)
{
    AzureModelConfig config;
    config.seed = 19;
    config.num_functions = 150;
    config.duration_us = 20 * kMinute;
    config.iat_median_sec = 30.0;
    config.mem_median_mb = 64.0;
    config.mem_sigma = 0.7;
    config.mem_max_mb = 512.0;
    const Trace t = generateAzureTrace(config);

    SimulatorConfig sim_config;
    sim_config.memory_mb = t.stats().total_unique_mem_mb / 3;
    sim_config.memory_sample_interval_us = 0;

    const SimResult oracle = simulateTrace(
        t, std::make_unique<OraclePolicy>(t), sim_config);
    const SimResult gd = simulateTrace(
        t, std::make_unique<GreedyDualPolicy>(), sim_config);
    const SimResult lru =
        simulateTrace(t, std::make_unique<LruPolicy>(), sim_config);
    const SimResult ttl =
        simulateTrace(t, std::make_unique<TtlPolicy>(), sim_config);

    // The farthest-next-use greedy is not provably optimal for weighted
    // caching, but it should dominate the online policies here.
    EXPECT_LE(oracle.cold_starts, gd.cold_starts);
    EXPECT_LE(oracle.cold_starts, lru.cold_starts);
    EXPECT_LE(oracle.cold_starts, ttl.cold_starts);
}

}  // namespace
}  // namespace faascache

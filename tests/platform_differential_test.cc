// Differential battery for the platform hot-path rebuild (DESIGN.md
// §4f): PlatformBackend::Dense (arena request queue, arrival-cursor
// merge, batched setup pushes) must be byte-identical to
// PlatformBackend::Reference (the original deque/heap path, retained
// as the oracle) for every policy, memory pressure, fault plan, and
// overload configuration — standalone servers, fault-aware clusters,
// sweeps at any --jobs, and checkpoint kill+resume round-trips.
//
// Byte identity is asserted on the checkpoint payload encodings
// (platform/experiment_checkpoint.h), whose hexfloat doubles make the
// comparison bit-exact; a payload mismatch therefore proves a real
// divergence in results, not a formatting artifact.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/policy_factory.h"
#include "platform/cluster.h"
#include "platform/experiment.h"
#include "platform/experiment_checkpoint.h"
#include "platform/fault_injection.h"
#include "platform/server.h"
#include "trace/function_spec.h"
#include "trace/patterns.h"
#include "trace/trace.h"
#include "util/audit.h"
#include "util/rng.h"

namespace faascache {
namespace {

/** Unique temp path per test; removed on destruction. */
class TempFile
{
  public:
    explicit TempFile(const std::string& tag)
        : path_(std::string(::testing::TempDir()) +
                "faascache_platform_diff_" + tag + ".ckpt")
    {
        std::remove(path_.c_str());
    }
    ~TempFile() { std::remove(path_.c_str()); }

    const std::string& path() const { return path_; }

  private:
    std::string path_;
};

/**
 * Mixed-size catalog under Poisson load, tuned so a sub-1-GB server
 * sees warm hits, demand evictions, queue waits, timeouts, and (with
 * the tighter configs below) queue-full drops — every drain branch.
 */
const Trace&
pressureTrace()
{
    static const Trace kTrace = [] {
        std::vector<FunctionSpec> specs;
        std::vector<TimeUs> iats;
        for (FunctionId id = 0; id < 24; ++id) {
            const MemMb mem = 64.0 + static_cast<double>(id % 6) * 96.0;
            specs.push_back(makeFunction(
                id, "fn" + std::to_string(id), mem,
                fromMillis(80 + 40 * (id % 5)),
                fromMillis(400 + 150 * (id % 4))));
            iats.push_back(fromSeconds(1.5 + 0.5 * (id % 7)));
        }
        return makePoissonTrace(specs, iats, 4 * kMinute, 0xD1FFu,
                                "diff-pressure");
    }();
    return kTrace;
}

/**
 * Azure-replay shape: every function fires on shared minute
 * boundaries, so arrivals pile onto identical timestamps — the
 * same-instant batch-admission path of the dense cursor merge.
 */
const Trace&
minuteBucketTrace()
{
    static const Trace kTrace = [] {
        Trace t("diff-minute-buckets");
        for (FunctionId id = 0; id < 40; ++id) {
            t.addFunction(makeFunction(
                id, "mb" + std::to_string(id),
                96.0 + static_cast<double>(id % 4) * 64.0,
                fromMillis(120), fromMillis(600)));
        }
        for (TimeUs minute = 0; minute <= 5; ++minute) {
            for (FunctionId id = 0; id < 40; ++id)
                t.addInvocation(id, minute * kMinute);
        }
        return t;
    }();
    return kTrace;
}

PlatformResult
runOne(const Trace& trace, PolicyKind kind, ServerConfig server,
       const PolicyConfig& policy, const FaultPlan* plan)
{
    Server s(makePolicy(kind, policy), server);
    std::unique_ptr<FaultInjector> injector;
    if (plan != nullptr) {
        injector = std::make_unique<FaultInjector>(*plan, 0);
        s.setFaultInjector(injector.get());
    }
    return s.run(trace);
}

/**
 * Assert byte-identical standalone results across the two backends.
 * Both runs execute under the runtime invariant auditor (ISSUE 8), so
 * every differential case doubles as a semantic-invariant check.
 */
void
expectBackendsAgree(const Trace& trace, PolicyKind kind,
                    ServerConfig server, const PolicyConfig& policy,
                    const FaultPlan* plan, const std::string& label)
{
    Auditor audit;
    server.audit = &audit;
    server.platform_backend = PlatformBackend::Dense;
    const std::string dense = encodePlatformCheckpointPayload(
        "cell", runOne(trace, kind, server, policy, plan));
    server.platform_backend = PlatformBackend::Reference;
    const std::string reference = encodePlatformCheckpointPayload(
        "cell", runOne(trace, kind, server, policy, plan));
    EXPECT_EQ(dense, reference) << "backends diverged: " << label;
    EXPECT_EQ(audit.violationCount(), 0)
        << label << ": " << audit.report();
}

OverloadConfig
fullOverload()
{
    OverloadConfig overload;
    overload.admission.enabled = true;
    overload.admission.target_delay_us = 300 * kMillisecond;
    overload.admission.interval_us = 5 * kSecond;
    overload.brownout.enabled = true;
    overload.brownout.min_duration_us = 5 * kSecond;
    return overload;
}

FaultPlan
stochasticFaults()
{
    FaultPlan plan;
    plan.spawn_failure_prob = 0.15;
    plan.spawn_retry_delay_us = 200 * kMillisecond;
    plan.straggler_prob = 0.2;
    plan.straggler_multiplier = 3.0;
    plan.reclaim_stall_prob = 0.1;
    plan.reclaim_stall_us = 300 * kMillisecond;
    plan.crashes.push_back(CrashEvent{0, 70 * kSecond, 20 * kSecond});
    plan.crashes.push_back(CrashEvent{0, 150 * kSecond, 15 * kSecond});
    return plan;
}

// The acceptance grid: every policy of the paper's evaluation, with
// the overload subsystem off and fully on, under memory pressure.
TEST(PlatformDifferential, AllPoliciesTimesOverloadAgree)
{
    for (PolicyKind kind : allPolicyKinds()) {
        for (bool overload_on : {false, true}) {
            ServerConfig server;
            server.cores = 4;
            server.memory_mb = 700.0;
            server.cold_start_cpu_slots = 2;
            if (overload_on)
                server.overload = fullOverload();
            expectBackendsAgree(
                pressureTrace(), kind, server, PolicyConfig{}, nullptr,
                policyKindName(kind) +
                    (overload_on ? "/overload-on" : "/overload-off"));
        }
    }
}

TEST(PlatformDifferential, MinuteBucketBurstsAgree)
{
    for (PolicyKind kind :
         {PolicyKind::GreedyDual, PolicyKind::Ttl, PolicyKind::Hist}) {
        ServerConfig server;
        server.cores = 3;
        server.memory_mb = 600.0;
        server.queue_capacity = 64;
        server.queue_timeout_us = 20 * kSecond;
        expectBackendsAgree(minuteBucketTrace(), kind, server,
                            PolicyConfig{}, nullptr,
                            "minute-buckets/" + policyKindName(kind));
    }
}

TEST(PlatformDifferential, FaultPlansAgree)
{
    const FaultPlan plan = stochasticFaults();
    for (PolicyKind kind : {PolicyKind::GreedyDual, PolicyKind::Ttl}) {
        for (bool overload_on : {false, true}) {
            ServerConfig server;
            server.cores = 4;
            server.memory_mb = 800.0;
            server.cold_start_cpu_slots = 2;
            if (overload_on)
                server.overload = fullOverload();
            expectBackendsAgree(
                pressureTrace(), kind, server, PolicyConfig{}, &plan,
                "faults/" + policyKindName(kind) +
                    (overload_on ? "/overload-on" : "/overload-off"));
        }
    }
}

TEST(PlatformDifferential, EvictionBatchingAgrees)
{
    for (MemMb batch_free_mb : {0.0, 250.0, 1000.0}) {
        PolicyConfig policy;
        policy.greedy_dual.batch_free_mb = batch_free_mb;
        ServerConfig server;
        server.cores = 4;
        server.memory_mb = 600.0;
        expectBackendsAgree(pressureTrace(), PolicyKind::GreedyDual,
                            server, policy, nullptr,
                            "batch_free_mb=" +
                                std::to_string(batch_free_mb));
    }
}

TEST(PlatformDifferential, EmptyAndTinyTracesAgree)
{
    Trace empty("diff-empty");
    empty.addFunction(makeFunction(0, "idle", 128.0, fromMillis(100),
                                   fromMillis(500)));
    Trace single("diff-single");
    single.addFunction(makeFunction(0, "solo", 128.0, fromMillis(100),
                                    fromMillis(500)));
    single.addInvocation(0, 30 * kSecond);
    for (const Trace* trace : {&empty, &single}) {
        expectBackendsAgree(*trace, PolicyKind::GreedyDual,
                            ServerConfig{}, PolicyConfig{}, nullptr,
                            trace->name());
    }
}

// Randomized fuzz over the server-config space: the structured grids
// above pin the branches we know about; this sweep hunts for the ones
// we do not. Deterministic seed, so a failure names a reproducible
// configuration.
TEST(PlatformDifferential, RandomizedConfigFuzz)
{
    Rng rng(0xFA57D1FFULL);
    const auto& kinds = allPolicyKinds();
    for (int round = 0; round < 24; ++round) {
        const PolicyKind kind = kinds[rng.uniformInt(kinds.size())];
        ServerConfig server;
        server.cores = 2 + static_cast<int>(rng.uniformInt(7));
        server.memory_mb =
            400.0 + static_cast<double>(rng.uniformInt(5)) * 400.0;
        server.queue_capacity = 8u << rng.uniformInt(6);
        server.queue_timeout_us =
            (5 + static_cast<TimeUs>(rng.uniformInt(30))) * kSecond;
        server.maintenance_interval_us =
            (2 + static_cast<TimeUs>(rng.uniformInt(12))) * kSecond;
        server.enable_prewarm = rng.uniformInt(2) == 0;
        server.cold_start_cpu_slots =
            1 + static_cast<int>(rng.uniformInt(2));
        if (rng.uniformInt(2) == 0)
            server.overload = fullOverload();

        PolicyConfig policy;
        policy.greedy_dual.batch_free_mb =
            static_cast<double>(rng.uniformInt(3)) * 300.0;

        FaultPlan plan;
        const bool faulty = rng.uniformInt(2) == 0;
        if (faulty) {
            plan.spawn_failure_prob =
                static_cast<double>(rng.uniformInt(30)) / 100.0;
            plan.straggler_prob =
                static_cast<double>(rng.uniformInt(30)) / 100.0;
            plan.reclaim_stall_prob =
                static_cast<double>(rng.uniformInt(20)) / 100.0;
            plan.seed = 0x5EEDFA11ULL + static_cast<std::uint64_t>(round);
            if (rng.uniformInt(2) == 0) {
                plan.crashes.push_back(CrashEvent{
                    0, (30 + rng.uniformInt(120)) * kSecond,
                    rng.uniformInt(30) * kSecond});
            }
        }

        std::ostringstream label;
        label << "fuzz round " << round << ": "
              << policyKindName(kind) << " cores=" << server.cores
              << " mem=" << server.memory_mb
              << " qcap=" << server.queue_capacity
              << " qto=" << server.queue_timeout_us
              << " maint=" << server.maintenance_interval_us
              << " prewarm=" << server.enable_prewarm
              << " coldslots=" << server.cold_start_cpu_slots
              << " overload=" << server.overload.any()
              << " batch=" << policy.greedy_dual.batch_free_mb
              << " faults=" << faulty;
        expectBackendsAgree(pressureTrace(), kind, server, policy,
                            faulty ? &plan : nullptr, label.str());
    }
}

// --------------------------------------------------------------------
// Cluster flavour: the fault-aware front end drives servers through
// begin/offer/advanceTo/finish, so this also differentially tests the
// incremental API plus the front end's own dense dispatch cursor.

ClusterConfig
baseClusterConfig()
{
    ClusterConfig config;
    config.num_servers = 3;
    config.server.cores = 3;
    config.server.memory_mb = 600.0;
    config.server.cold_start_cpu_slots = 2;
    config.seed = 99;
    return config;
}

void
expectClusterBackendsAgree(const Trace& trace, PolicyKind kind,
                           ClusterConfig config,
                           const std::string& label)
{
    Auditor audit;
    config.server.audit = &audit;
    config.server.platform_backend = PlatformBackend::Dense;
    const std::string dense = encodeClusterCheckpointPayload(
        "cell", runCluster(trace, kind, config));
    config.server.platform_backend = PlatformBackend::Reference;
    const std::string reference = encodeClusterCheckpointPayload(
        "cell", runCluster(trace, kind, config));
    EXPECT_EQ(dense, reference) << "cluster backends diverged: " << label;
    EXPECT_EQ(audit.violationCount(), 0)
        << label << ": " << audit.report();
}

TEST(ClusterDifferential, SplitAndFaultAwarePathsAgree)
{
    for (LoadBalancing balancing :
         {LoadBalancing::Random, LoadBalancing::RoundRobin,
          LoadBalancing::FunctionHash}) {
        // Fault-free: exercises runClusterSplit (per-shard run()).
        ClusterConfig split = baseClusterConfig();
        split.balancing = balancing;
        expectClusterBackendsAgree(
            pressureTrace(), PolicyKind::GreedyDual, split,
            "split/balancing=" + std::to_string(static_cast<int>(
                                     balancing)));

        // Crashing fleet with full failover machinery: exercises the
        // fault-aware front end and its dispatch cursor.
        ClusterConfig faulty = split;
        faulty.faults.spawn_failure_prob = 0.1;
        faulty.faults.crashes.push_back(
            CrashEvent{0, 60 * kSecond, 20 * kSecond});
        faulty.faults.crashes.push_back(
            CrashEvent{2, 120 * kSecond, 15 * kSecond});
        faulty.failover.max_retries = 3;
        faulty.failover.base_backoff_us = 100 * kMillisecond;
        faulty.failover.shed_queue_depth = 32;
        faulty.failover.backoff_jitter_frac = 0.2;
        faulty.failover.retry_budget.ratio = 0.5;
        faulty.failover.breaker.failure_threshold = 4;
        expectClusterBackendsAgree(
            pressureTrace(), PolicyKind::GreedyDual, faulty,
            "fault-aware/balancing=" + std::to_string(static_cast<int>(
                                           balancing)));
    }
}

TEST(ClusterDifferential, OverloadedFleetAgrees)
{
    ClusterConfig config = baseClusterConfig();
    config.server.overload = fullOverload();
    config.faults.crashes.push_back(
        CrashEvent{1, 90 * kSecond, 25 * kSecond});
    config.failover.max_retries = 2;
    config.failover.retry_budget.ratio = 0.3;
    config.failover.breaker.failure_threshold = 3;
    for (PolicyKind kind : {PolicyKind::GreedyDual, PolicyKind::Ttl})
        expectClusterBackendsAgree(pressureTrace(), kind, config,
                                   "overloaded/" + policyKindName(kind));
}

// --------------------------------------------------------------------
// Sweep determinism and crash safety.

std::vector<PlatformCell>
mixedBackendGrid()
{
    std::vector<PlatformCell> cells;
    for (PlatformBackend backend :
         {PlatformBackend::Dense, PlatformBackend::Reference}) {
        for (double memory_mb : {500.0, 900.0}) {
            PlatformCell cell;
            cell.trace = &pressureTrace();
            cell.kind = PolicyKind::GreedyDual;
            cell.server.cores = 4;
            cell.server.memory_mb = memory_mb;
            cell.server.platform_backend = backend;
            cell.key = std::string(platformBackendName(backend)) + "/" +
                std::to_string(static_cast<int>(memory_mb));
            cells.push_back(cell);
        }
    }
    return cells;
}

std::vector<std::string>
sweepPayloads(const PlatformSweepReport& report)
{
    std::vector<std::string> payloads;
    for (const auto& cell : report.cells) {
        payloads.push_back(
            encodePlatformCheckpointPayload("cell", cell.result));
    }
    return payloads;
}

TEST(PlatformDifferential, SweepIsJobsInvariantAcrossBackends)
{
    const std::vector<PlatformCell> cells = mixedBackendGrid();
    const PlatformSweepReport serial = runPlatformSweepReport(cells, 1);
    const PlatformSweepReport parallel =
        runPlatformSweepReport(cells, 4);
    ASSERT_TRUE(serial.allOk());
    ASSERT_TRUE(parallel.allOk());
    const std::vector<std::string> a = sweepPayloads(serial);
    const std::vector<std::string> b = sweepPayloads(parallel);
    ASSERT_EQ(a, b) << "--jobs changed sweep output";
    // Dense cells (first half) must equal their Reference twins.
    ASSERT_EQ(a.size(), 4u);
    EXPECT_EQ(a[0], a[2]);
    EXPECT_EQ(a[1], a[3]);
}

/** Truncate `path` to its header plus the first `cells` journaled
 *  records — a faithful replica of a SIGKILL mid-sweep. */
void
truncateJournal(const std::string& path, std::size_t cells)
{
    std::ifstream in(path);
    ASSERT_TRUE(in.is_open());
    std::ostringstream kept;
    std::size_t seen = 0;
    std::string line;
    while (std::getline(in, line)) {
        if (line.rfind("cell ", 0) == 0 && ++seen > cells)
            break;
        kept << line << '\n';
    }
    in.close();
    ASSERT_GE(seen, cells) << "journal held fewer records than expected";
    std::ofstream out(path, std::ios::trunc);
    out << kept.str();
}

TEST(PlatformDifferential, CheckpointKillResumeRoundTrips)
{
    const std::vector<PlatformCell> cells = mixedBackendGrid();
    TempFile full("full");
    PlatformSweepOptions options;
    options.checkpoint_path = full.path();
    const PlatformSweepReport uninterrupted =
        runPlatformSweepReport(cells, 1, options);
    ASSERT_TRUE(uninterrupted.allOk());

    // "Kill" after two journaled cells, then resume.
    truncateJournal(full.path(), 2);
    options.resume = true;
    const PlatformSweepReport resumed =
        runPlatformSweepReport(cells, 1, options);
    ASSERT_TRUE(resumed.allOk());
    EXPECT_EQ(resumed.restored, 2u);
    EXPECT_EQ(sweepPayloads(uninterrupted), sweepPayloads(resumed));
}

TEST(ClusterDifferential, CheckpointKillResumeRoundTrips)
{
    std::vector<ClusterCell> cells;
    for (PlatformBackend backend :
         {PlatformBackend::Dense, PlatformBackend::Reference}) {
        ClusterCell cell;
        cell.trace = &pressureTrace();
        cell.kind = PolicyKind::GreedyDual;
        cell.config = baseClusterConfig();
        cell.config.server.platform_backend = backend;
        cell.config.faults.crashes.push_back(
            CrashEvent{0, 60 * kSecond, 20 * kSecond});
        cell.config.failover.max_retries = 2;
        cell.key = platformBackendName(backend);
        cells.push_back(cell);
    }

    TempFile full("cluster");
    PlatformSweepOptions options;
    options.checkpoint_path = full.path();
    const ClusterSweepReport uninterrupted =
        runClusterSweepReport(cells, 1, options);
    ASSERT_TRUE(uninterrupted.allOk());

    truncateJournal(full.path(), 1);
    options.resume = true;
    const ClusterSweepReport resumed =
        runClusterSweepReport(cells, 1, options);
    ASSERT_TRUE(resumed.allOk());
    EXPECT_EQ(resumed.restored, 1u);

    std::vector<std::string> a;
    std::vector<std::string> b;
    for (std::size_t i = 0; i < cells.size(); ++i) {
        a.push_back(encodeClusterCheckpointPayload(
            "cell", uninterrupted.cells[i].result));
        b.push_back(encodeClusterCheckpointPayload(
            "cell", resumed.cells[i].result));
    }
    EXPECT_EQ(a, b);
    // The two backends' cluster results are byte-identical too.
    EXPECT_EQ(a[0], a[1]);
}

TEST(PlatformDifferential, FingerprintSeesBackendFlip)
{
    std::vector<PlatformCell> cells = mixedBackendGrid();
    const std::uint64_t before = platformSweepFingerprint(cells);
    cells[0].server.platform_backend = PlatformBackend::Reference;
    EXPECT_NE(before, platformSweepFingerprint(cells))
        << "a journal from one backend must not resume into the other";
}

}  // namespace
}  // namespace faascache

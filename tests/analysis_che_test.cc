#include "analysis/che_approximation.h"

#include <gtest/gtest.h>

#include <cmath>

#include "analysis/hit_ratio_curve.h"
#include "analysis/reuse_distance.h"
#include "trace/azure_model.h"

namespace faascache {
namespace {

TEST(CheApproximation, EmptyModel)
{
    CheApproximation che({});
    EXPECT_EQ(che.hitRatio(1'000), 0.0);
    EXPECT_EQ(che.characteristicTime(1'000), 0.0);
}

TEST(CheApproximation, EverythingFitsGivesHitRatioOne)
{
    CheApproximation che({{1.0, 100.0}, {2.0, 200.0}});
    EXPECT_DOUBLE_EQ(che.hitRatio(300.0), 1.0);
    EXPECT_TRUE(std::isinf(che.characteristicTime(300.0)));
}

TEST(CheApproximation, ZeroCacheGivesZero)
{
    CheApproximation che({{1.0, 100.0}});
    EXPECT_DOUBLE_EQ(che.hitRatio(0.0), 0.0);
}

TEST(CheApproximation, CharacteristicTimeSolvesFixedPoint)
{
    // One function, rate 2/s, size 100: resident(t) = 100(1-e^{-2t}).
    // For c = 50, t_c solves 1 - e^{-2t} = 0.5 -> t = ln(2)/2.
    CheApproximation che({{2.0, 100.0}});
    EXPECT_NEAR(che.characteristicTime(50.0), std::log(2.0) / 2.0, 1e-6);
    EXPECT_NEAR(che.hitRatio(50.0), 0.5, 1e-6);
}

TEST(CheApproximation, MonotoneInCacheSize)
{
    CheApproximation che({{5.0, 100.0}, {0.5, 400.0}, {0.05, 1'000.0}});
    double prev = -1.0;
    for (double c = 0; c <= 1'500.0; c += 50.0) {
        const double h = che.hitRatio(c);
        EXPECT_GE(h, prev);
        EXPECT_LE(h, 1.0);
        prev = h;
    }
}

TEST(CheApproximation, HotFunctionsResidentFirst)
{
    // With a small cache the hit ratio exceeds the size fraction,
    // because hot (high-rate) functions occupy it preferentially.
    CheApproximation che({{10.0, 100.0}, {0.01, 900.0}});
    const double h = che.hitRatio(100.0);
    EXPECT_GT(h, 0.9);  // the hot function dominates the request stream
}

TEST(CheApproximation, TracksEmpiricalCurveOnPoissonLikeWorkload)
{
    AzureModelConfig config;
    config.seed = 51;
    config.num_functions = 200;
    config.duration_us = kHour;
    config.iat_median_sec = 60.0;
    config.mem_median_mb = 64.0;
    config.mem_sigma = 0.7;
    config.mem_max_mb = 512.0;
    const Trace t = generateAzureTrace(config);

    const CheApproximation che = CheApproximation::fromTrace(t);
    const HitRatioCurve exact =
        HitRatioCurve::fromReuseDistances(computeReuseDistances(t));

    // Che's approximation is exact only for independent Poisson
    // arrivals and an LRU cache; minute-bucketed replay deviates, so
    // allow a generous band — the curves must still tell the same
    // story.
    for (MemMb size : {1'000.0, 4'000.0, 12'000.0}) {
        EXPECT_NEAR(che.hitRatio(size), exact.hitRatio(size), 0.2)
            << "at " << size;
    }
}

TEST(CheApproximation, FromTraceUsesObservedRates)
{
    Trace t("t");
    t.addFunction(makeFunction(0, "hot", 100, fromMillis(10),
                               fromMillis(10)));
    t.addFunction(makeFunction(1, "cold", 100, fromMillis(10),
                               fromMillis(10)));
    for (TimeUs at = 0; at < kMinute; at += kSecond)
        t.addInvocation(0, at);
    t.addInvocation(1, 0);
    t.addInvocation(1, kMinute - kSecond);
    const CheApproximation che = CheApproximation::fromTrace(t);
    EXPECT_DOUBLE_EQ(che.totalSizeMb(), 200.0);
    // At half the total size, the hot function dominates.
    EXPECT_GT(che.hitRatio(100.0), 0.8);
}

}  // namespace
}  // namespace faascache

#include "platform/event_queue.h"

#include <gtest/gtest.h>

namespace faascache {
namespace {

TEST(EventQueue, OrdersByTime)
{
    EventQueue q;
    q.push(30, EventKind::Arrival, 3);
    q.push(10, EventKind::Arrival, 1);
    q.push(20, EventKind::Finish, 2);
    EXPECT_EQ(q.pop().payload, 1u);
    EXPECT_EQ(q.pop().payload, 2u);
    EXPECT_EQ(q.pop().payload, 3u);
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, FifoWithinSameTimestamp)
{
    EventQueue q;
    for (std::uint64_t i = 0; i < 10; ++i)
        q.push(100, EventKind::Arrival, i);
    for (std::uint64_t i = 0; i < 10; ++i)
        EXPECT_EQ(q.pop().payload, i);
}

TEST(EventQueue, NextTimePeeks)
{
    EventQueue q;
    q.push(42, EventKind::Maintenance);
    EXPECT_EQ(q.nextTime(), 42);
    EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, KindAndPayloadPreserved)
{
    EventQueue q;
    q.push(5, EventKind::Finish, 777);
    const Event e = q.pop();
    EXPECT_EQ(e.kind, EventKind::Finish);
    EXPECT_EQ(e.payload, 777u);
    EXPECT_EQ(e.time_us, 5);
}

TEST(EventQueue, InterleavedPushPop)
{
    EventQueue q;
    q.push(10, EventKind::Arrival, 1);
    q.push(20, EventKind::Arrival, 2);
    EXPECT_EQ(q.pop().payload, 1u);
    q.push(15, EventKind::Arrival, 3);
    EXPECT_EQ(q.pop().payload, 3u);
    EXPECT_EQ(q.pop().payload, 2u);
}

}  // namespace
}  // namespace faascache

/**
 * @file
 * Crash-consistency fuzzing of the checkpoint/resume path (ISSUE 8).
 *
 * A seeded battery of >= 1000 deterministic journal corruptions
 * (util/journal_mutator.h) drives runPlatformSweepReport() resume and
 * asserts the crash-safety contract end to end: every resume either
 * reproduces the uninterrupted sweep byte-identically (corrupted
 * records are detected and their cells re-run) or refuses with a named
 * error — never crashes, never silently diverges.
 *
 * Also pins the journal semantics the fuzzer relies on: duplicate cell
 * ids restore last-write-wins, and a record whose bytes end exactly at
 * the torn-tail boundary parses iff its newline survived.
 */
#include "util/journal_mutator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "platform/experiment.h"
#include "platform/experiment_checkpoint.h"
#include "trace/function_spec.h"
#include "util/checkpoint_journal.h"

namespace faascache {
namespace {

/** Unique temp path per test; removed on destruction. */
class TempFile
{
  public:
    explicit TempFile(const std::string& tag)
        : path_(std::string(::testing::TempDir()) + "faascache_fuzz_" +
                tag + ".ckpt")
    {
        std::remove(path_.c_str());
    }
    ~TempFile() { std::remove(path_.c_str()); }

    const std::string& path() const { return path_; }

    void write(const std::string& bytes) const
    {
        std::ofstream out(path_, std::ios::binary | std::ios::trunc);
        out.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size()));
    }

    std::string read() const
    {
        std::ifstream in(path_, std::ios::binary);
        std::ostringstream buf;
        buf << in.rdbuf();
        return buf.str();
    }

  private:
    std::string path_;
};

/** Small but non-trivial workload: warm hits, colds, and drops. */
const Trace&
fuzzTrace()
{
    static const Trace kTrace = [] {
        Trace t("fuzz-trace");
        t.addFunction(makeFunction(0, "hot", 400, fromSeconds(0.5),
                                   fromSeconds(2.0)));
        t.addFunction(makeFunction(1, "big", 700, fromSeconds(0.5),
                                   fromSeconds(2.0)));
        for (int i = 0; i < 120; ++i)
            t.addInvocation(i % 4 == 3 ? 1 : 0, i * 2 * kSecond);
        return t;
    }();
    return kTrace;
}

std::vector<PlatformCell>
fuzzGrid()
{
    std::vector<PlatformCell> cells;
    for (double memory_mb : {600.0, 1200.0}) {
        for (PolicyKind kind :
             {PolicyKind::Ttl, PolicyKind::GreedyDual}) {
            PlatformCell cell;
            cell.trace = &fuzzTrace();
            cell.kind = kind;
            cell.server.cores = 2;
            cell.server.memory_mb = memory_mb;
            cells.push_back(cell);
        }
    }
    return cells;
}

/** The uninterrupted run the fuzzer compares every resume against. */
struct Baseline
{
    std::vector<PlatformCell> cells;
    std::vector<std::string> keys;
    std::vector<std::string> payloads;  ///< canonical encoded results
    std::string journal;                ///< pristine journal bytes
};

const Baseline&
baseline()
{
    static const Baseline kBaseline = [] {
        Baseline b;
        b.cells = fuzzGrid();
        b.keys = platformCellKeys(b.cells);

        TempFile file("baseline");
        PlatformSweepOptions options;
        options.checkpoint_path = file.path();
        const PlatformSweepReport report =
            runPlatformSweepReport(b.cells, 1, options);
        EXPECT_TRUE(report.allOk());
        const std::vector<PlatformResult> results = report.results();
        for (std::size_t i = 0; i < results.size(); ++i)
            b.payloads.push_back(
                encodePlatformCheckpointPayload(b.keys[i], results[i]));
        b.journal = file.read();
        EXPECT_FALSE(b.journal.empty());
        return b;
    }();
    return kBaseline;
}

// --- The fuzz battery ----------------------------------------------------

TEST(CheckpointFuzz, EveryMutationResumesIdenticallyOrRefusesNamed)
{
    const Baseline& base = baseline();
    const TempFile file("battery");

    constexpr std::uint64_t kSeeds = 1200;
    std::int64_t accepted = 0;
    std::int64_t rejected = 0;

    for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
        JournalMutation mutation;
        const std::string corrupted =
            mutateJournal(base.journal, seed, &mutation);
        file.write(corrupted);

        PlatformSweepOptions options;
        options.checkpoint_path = file.path();
        options.resume = true;

        try {
            const PlatformSweepReport report =
                runPlatformSweepReport(base.cells, 1, options);
            // Accepted: the sweep must end byte-identical to the
            // uninterrupted run — corrupted records re-ran their cells.
            ASSERT_TRUE(report.allOk())
                << "seed " << seed << ": " << mutation.format();
            const std::vector<PlatformResult> results = report.results();
            ASSERT_EQ(results.size(), base.payloads.size());
            for (std::size_t i = 0; i < results.size(); ++i) {
                ASSERT_EQ(encodePlatformCheckpointPayload(base.keys[i],
                                                          results[i]),
                          base.payloads[i])
                    << "seed " << seed << " diverged on cell "
                    << base.keys[i] << " after " << mutation.format();
            }
            ++accepted;
        } catch (const std::exception& e) {
            // Refused: the error must name what was wrong.
            ASSERT_FALSE(std::string(e.what()).empty())
                << "seed " << seed << " rejected without a message ("
                << mutation.format() << ")";
            ++rejected;
        }
    }

    EXPECT_EQ(accepted + rejected, static_cast<std::int64_t>(kSeeds));
    // The mutation classes must exercise both contract arms; a battery
    // that only ever refuses (or only ever accepts) tests nothing.
    EXPECT_GT(accepted, 0);
    EXPECT_GT(rejected, 0);
}

TEST(CheckpointFuzz, MutatorIsDeterministic)
{
    const Baseline& base = baseline();
    for (std::uint64_t seed : {0ULL, 7ULL, 999ULL}) {
        JournalMutation first, second;
        EXPECT_EQ(mutateJournal(base.journal, seed, &first),
                  mutateJournal(base.journal, seed, &second));
        EXPECT_EQ(first.kind, second.kind);
        EXPECT_EQ(first.detail, second.detail);
    }
}

TEST(CheckpointFuzz, MutatorCoversEveryMutationClass)
{
    const Baseline& base = baseline();
    std::vector<std::string> seen;
    for (std::uint64_t seed = 0; seed < 64; ++seed) {
        JournalMutation mutation;
        mutateJournal(base.journal, seed, &mutation);
        seen.push_back(mutation.kind);
    }
    for (const char* kind :
         {"bit-flip", "truncate", "duplicate-line", "swap-lines",
          "delete-line", "corrupt-header", "append-garbage"}) {
        EXPECT_NE(std::find(seen.begin(), seen.end(), kind), seen.end())
            << "64 consecutive seeds never produced " << kind;
    }
}

// --- Journal semantics the fuzzer relies on (satellite 2) ----------------

TEST(JournalSemantics, DuplicateCellIdRestoresLastWrite)
{
    const Baseline& base = baseline();
    const TempFile file("dup");
    file.write(base.journal);

    // Append a second record for cell 0 carrying doctored counters:
    // last write must win on restore, deterministically.
    const CheckpointJournalLoad load =
        loadCheckpointJournal(file.path());
    ASSERT_FALSE(load.torn_tail);

    std::string key;
    PlatformResult doctored;
    ASSERT_TRUE(decodePlatformCheckpointPayload(
        load.records.front().payload, &key, &doctored));
    ASSERT_EQ(key, base.keys.front());
    doctored.warm_starts += 7;
    {
        CheckpointJournalWriter writer =
            CheckpointJournalWriter::continueAt(file.path(),
                                                load.valid_bytes);
        writer.append(
            encodePlatformCheckpointPayload(key, doctored));
    }

    PlatformSweepOptions options;
    options.checkpoint_path = file.path();
    options.resume = true;
    const PlatformSweepReport report =
        runPlatformSweepReport(base.cells, 1, options);
    ASSERT_TRUE(report.allOk());
    EXPECT_EQ(report.restored, base.cells.size());
    EXPECT_TRUE(report.cells.front().restored);
    EXPECT_EQ(encodePlatformCheckpointPayload(
                  base.keys.front(), report.results().front()),
              encodePlatformCheckpointPayload(key, doctored))
        << "duplicate cell id must restore the later record";
}

TEST(JournalSemantics, RecordEndingExactlyAtTornTailBoundary)
{
    const Baseline& base = baseline();
    const TempFile file("boundary");
    file.write(base.journal);
    const CheckpointJournalLoad whole =
        loadCheckpointJournal(file.path());
    ASSERT_GE(whole.records.size(), 2u);
    const std::size_t last_end = whole.records.back().end_offset;
    ASSERT_EQ(last_end, base.journal.size());

    // Cut exactly at the record's end (newline intact): nothing torn.
    {
        file.write(base.journal.substr(0, last_end));
        const CheckpointJournalLoad load =
            loadCheckpointJournal(file.path());
        EXPECT_FALSE(load.torn_tail);
        EXPECT_EQ(load.records.size(), whole.records.size());
        EXPECT_EQ(load.valid_bytes, last_end);
    }

    // Cut one byte earlier (payload complete, newline gone): the last
    // record is torn and the valid prefix ends at the previous record.
    {
        file.write(base.journal.substr(0, last_end - 1));
        const CheckpointJournalLoad load =
            loadCheckpointJournal(file.path());
        EXPECT_TRUE(load.torn_tail);
        EXPECT_EQ(load.records.size(), whole.records.size() - 1);
        EXPECT_EQ(load.valid_bytes,
                  whole.records[whole.records.size() - 2].end_offset);

        // Resume over the torn journal re-runs the lost cell and ends
        // byte-identical to the uninterrupted sweep.
        PlatformSweepOptions options;
        options.checkpoint_path = file.path();
        options.resume = true;
        const PlatformSweepReport report =
            runPlatformSweepReport(base.cells, 1, options);
        ASSERT_TRUE(report.allOk());
        EXPECT_TRUE(report.torn_tail);
        EXPECT_EQ(report.restored, base.cells.size() - 1);
        const std::vector<PlatformResult> results = report.results();
        for (std::size_t i = 0; i < results.size(); ++i)
            EXPECT_EQ(encodePlatformCheckpointPayload(base.keys[i],
                                                      results[i]),
                      base.payloads[i]);
    }
}

}  // namespace
}  // namespace faascache

#include "core/histogram_policy.h"

#include <gtest/gtest.h>

#include "core/container_pool.h"

namespace faascache {
namespace {

FunctionSpec
fn(FunctionId id, MemMb mem = 100)
{
    return makeFunction(id, "fn" + std::to_string(id), mem, fromMillis(200),
                        fromSeconds(2));
}

/** Feed `n` arrivals of `spec` spaced `iat` apart, starting at t0. */
void
feedArrivals(HistogramPolicy& policy, const FunctionSpec& spec, int n,
             TimeUs iat, TimeUs t0 = 0)
{
    for (int i = 0; i < n; ++i)
        policy.onInvocationArrival(spec, t0 + i * iat);
}

TEST(HistogramPolicy, UnknownFunctionGetsGenericTtl)
{
    HistogramPolicy policy;
    const KeepAliveWindow w = policy.windowFor(42);
    EXPECT_FALSE(w.predictable);
    EXPECT_EQ(w.keepalive_us, policy.config().generic_ttl_us);
}

TEST(HistogramPolicy, TooFewSamplesIsUnpredictable)
{
    HistogramPolicy policy;
    feedArrivals(policy, fn(0), 2, 5 * kMinute);  // only 1 IAT sample
    EXPECT_FALSE(policy.windowFor(0).predictable);
}

TEST(HistogramPolicy, RegularIatBecomesPredictable)
{
    HistogramPolicy policy;
    feedArrivals(policy, fn(0), 10, 5 * kMinute);
    const KeepAliveWindow w = policy.windowFor(0);
    EXPECT_TRUE(w.predictable);
    // All IATs land in the 5-minute bucket: the head is the bucket's
    // lower edge (5 min) with the 0.85 safety margin, so the prewarm
    // fires *before* the predicted arrival.
    EXPECT_NEAR(static_cast<double>(w.prewarm_us), 0.85 * 5.0 * kMinute,
                static_cast<double>(kMinute) / 2);
    EXPECT_GE(w.keepalive_us, w.prewarm_us);
}

TEST(HistogramPolicy, HighCovIsUnpredictable)
{
    HistogramPolicy policy;
    const FunctionSpec f = fn(0);
    // One enormous IAT among many tiny ones: CoV above 2 (about 3.2).
    TimeUs t = 0;
    const TimeUs iats[] = {kSecond, kSecond, kSecond,       kSecond,
                           kSecond, kSecond, kSecond,       kSecond,
                           kSecond, kSecond, 230 * kMinute, kSecond};
    policy.onInvocationArrival(f, t);
    for (TimeUs iat : iats) {
        t += iat;
        policy.onInvocationArrival(f, t);
    }
    EXPECT_FALSE(policy.windowFor(0).predictable);
}

TEST(HistogramPolicy, OutOfBoundsIatsAreUnpredictable)
{
    HistogramPolicyConfig config;
    config.num_buckets = 10;  // 10-minute window
    HistogramPolicy policy(config);
    feedArrivals(policy, fn(0), 10, kHour);  // all IATs overflow
    EXPECT_FALSE(policy.windowFor(0).predictable);
}

TEST(HistogramPolicy, ShortHeadSkipsPrewarm)
{
    HistogramPolicy policy;
    feedArrivals(policy, fn(0), 10, 10 * kSecond);  // sub-minute IAT
    const KeepAliveWindow w = policy.windowFor(0);
    EXPECT_TRUE(w.predictable);
    EXPECT_EQ(w.prewarm_us, 0);  // container just stays warm
}

TEST(HistogramPolicy, PredictableFunctionReleasesAndPrewarms)
{
    HistogramPolicy policy;
    ContainerPool pool(1000);
    const FunctionSpec f = fn(0);
    feedArrivals(policy, fn(0), 10, 5 * kMinute);
    const TimeUs now = 9 * 5 * kMinute;

    // Serve the latest arrival cold.
    Container& c = pool.add(f, now);
    c.startInvocation(now, now + f.cold_us);
    policy.onColdStart(c, f, now);
    c.finishInvocation();

    // The container expires immediately (release after execution)...
    EXPECT_EQ(policy.expiredContainers(pool, now + kSecond).size(), 1u);

    // ...and a prewarm is scheduled near the head of the window. Older
    // arrivals scheduled prewarms too; drain everything up to `now`
    // first, then the entry from the final arrival remains pending
    // until now + head.
    policy.duePrewarms(now);
    const KeepAliveWindow w = policy.windowFor(0);
    const auto due = policy.duePrewarms(now + w.prewarm_us + kSecond);
    ASSERT_EQ(due.size(), 1u);
    EXPECT_EQ(due[0], 0u);
    // Consumed: asking again yields nothing.
    EXPECT_TRUE(policy.duePrewarms(now + w.prewarm_us + kSecond).empty());
}

TEST(HistogramPolicy, PrewarmedContainerExpiresAtTail)
{
    HistogramPolicy policy;
    ContainerPool pool(1000);
    const FunctionSpec f = fn(0);
    feedArrivals(policy, fn(0), 10, 5 * kMinute);
    const KeepAliveWindow w = policy.windowFor(0);
    ASSERT_TRUE(w.predictable);
    ASSERT_GT(w.prewarm_us, 0);

    const TimeUs prewarm_time = 100 * kMinute;
    Container& c = pool.add(f, prewarm_time, /*prewarmed=*/true);
    policy.onPrewarm(c, f, prewarm_time);

    const TimeUs lease = w.keepalive_us - w.prewarm_us;
    EXPECT_TRUE(
        policy.expiredContainers(pool, prewarm_time + lease - kSecond)
            .empty());
    EXPECT_EQ(
        policy.expiredContainers(pool, prewarm_time + lease + kSecond)
            .size(),
        1u);
}

TEST(HistogramPolicy, UnpredictableUsesGenericTwoHourTtl)
{
    HistogramPolicy policy;
    ContainerPool pool(1000);
    const FunctionSpec f = fn(0);
    policy.onInvocationArrival(f, 0);
    Container& c = pool.add(f, 0);
    c.startInvocation(0, f.cold_us);
    policy.onColdStart(c, f, 0);
    c.finishInvocation();

    EXPECT_TRUE(policy.expiredContainers(pool, 2 * kHour - kSecond).empty());
    EXPECT_EQ(policy.expiredContainers(pool, 2 * kHour).size(), 1u);
}

TEST(HistogramPolicy, EvictionErasesLease)
{
    HistogramPolicy policy;
    ContainerPool pool(1000);
    const FunctionSpec f = fn(0);
    policy.onInvocationArrival(f, 0);
    Container& c = pool.add(f, 0);
    c.startInvocation(0, f.cold_us);
    policy.onColdStart(c, f, 0);
    c.finishInvocation();
    policy.onEviction(c, true, kSecond);
    pool.remove(c.id());
    // No stale lease entries: a new container for another function is
    // unaffected (smoke check via expiredContainers on empty pool).
    EXPECT_TRUE(policy.expiredContainers(pool, 3 * kHour).empty());
}

TEST(HistogramPolicy, PressureEvictionIsLru)
{
    HistogramPolicy policy;
    ContainerPool pool(10'000);
    const FunctionSpec f0 = fn(0), f1 = fn(1);
    policy.onInvocationArrival(f0, 0);
    Container& a = pool.add(f0, 0);
    a.startInvocation(0, f0.cold_us);
    policy.onColdStart(a, f0, 0);
    a.finishInvocation();

    policy.onInvocationArrival(f1, kSecond);
    Container& b = pool.add(f1, kSecond);
    b.startInvocation(kSecond, kSecond + f1.cold_us);
    policy.onColdStart(b, f1, kSecond);
    b.finishInvocation();

    const auto victims = policy.selectVictims(pool, 50, 2 * kSecond);
    ASSERT_EQ(victims.size(), 1u);
    EXPECT_EQ(victims[0], a.id());
}

TEST(HistogramPolicy, DuePrewarmsDeduplicates)
{
    HistogramPolicy policy;
    const FunctionSpec f = fn(0);
    // Two arrivals close together both schedule prewarms.
    feedArrivals(policy, f, 12, 5 * kMinute);
    const auto due = policy.duePrewarms(24 * kHour);
    EXPECT_LE(due.size(), 1u);
}

TEST(HistogramPolicy, NameIsHIST)
{
    EXPECT_EQ(HistogramPolicy().name(), "HIST");
}

}  // namespace
}  // namespace faascache

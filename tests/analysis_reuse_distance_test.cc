#include "analysis/reuse_distance.h"

#include <gtest/gtest.h>

#include <cmath>

#include "trace/azure_model.h"
#include "util/rng.h"

namespace faascache {
namespace {

Trace
traceFromSequence(const std::vector<FunctionId>& seq,
                  const std::vector<MemMb>& sizes)
{
    Trace t("seq");
    for (std::size_t i = 0; i < sizes.size(); ++i) {
        t.addFunction(makeFunction(static_cast<FunctionId>(i),
                                   "f" + std::to_string(i), sizes[i],
                                   fromMillis(10), fromMillis(10)));
    }
    TimeUs now = 0;
    for (FunctionId fn : seq)
        t.addInvocation(fn, now += kMillisecond);
    return t;
}

TEST(ReuseDistance, PaperExampleABCBCA)
{
    // Paper §5.1: in ABCBCA the reuse distance of (the second) A is
    // size(B) + size(C).
    const Trace t =
        traceFromSequence({0, 1, 2, 1, 2, 0}, {10.0, 20.0, 30.0});
    const auto d = computeReuseDistances(t);
    ASSERT_EQ(d.size(), 6u);
    EXPECT_EQ(d[0], kInfiniteReuseDistance);  // A first touch
    EXPECT_EQ(d[1], kInfiniteReuseDistance);  // B first touch
    EXPECT_EQ(d[2], kInfiniteReuseDistance);  // C first touch
    EXPECT_DOUBLE_EQ(d[3], 30.0);             // B: unique {C}
    EXPECT_DOUBLE_EQ(d[4], 20.0);             // C: unique {B}
    EXPECT_DOUBLE_EQ(d[5], 50.0);             // A: unique {B, C}
}

TEST(ReuseDistance, ConsecutiveSameFunctionIsZero)
{
    const Trace t = traceFromSequence({0, 0, 0}, {10.0});
    const auto d = computeReuseDistances(t);
    EXPECT_EQ(d[0], kInfiniteReuseDistance);
    EXPECT_DOUBLE_EQ(d[1], 0.0);
    EXPECT_DOUBLE_EQ(d[2], 0.0);
}

TEST(ReuseDistance, DuplicatesCountedOnce)
{
    // A B B B A: distance of second A is size(B), not 3 x size(B).
    const Trace t = traceFromSequence({0, 1, 1, 1, 0}, {10.0, 20.0});
    const auto d = computeReuseDistances(t);
    EXPECT_DOUBLE_EQ(d[4], 20.0);
}

TEST(ReuseDistance, EmptyTrace)
{
    Trace t("empty");
    EXPECT_TRUE(computeReuseDistances(t).empty());
}

TEST(ReuseDistance, NaiveMatchesPaperExample)
{
    const Trace t =
        traceFromSequence({0, 1, 2, 1, 2, 0}, {10.0, 20.0, 30.0});
    const auto fast = computeReuseDistances(t);
    const auto naive = computeReuseDistancesNaive(t);
    EXPECT_EQ(fast, naive);
}

TEST(ReuseDistance, FenwickMatchesNaiveOnRandomTraces)
{
    Rng rng(31);
    for (int round = 0; round < 10; ++round) {
        const std::size_t num_fns = 5 + rng.uniformInt(10);
        std::vector<MemMb> sizes;
        for (std::size_t i = 0; i < num_fns; ++i)
            sizes.push_back(std::round(rng.uniform(16, 512)));
        std::vector<FunctionId> seq;
        for (int i = 0; i < 400; ++i)
            seq.push_back(static_cast<FunctionId>(rng.uniformInt(num_fns)));
        const Trace t = traceFromSequence(seq, sizes);
        EXPECT_EQ(computeReuseDistances(t), computeReuseDistancesNaive(t));
    }
}

TEST(ReuseDistance, MatchesNaiveOnAzureSample)
{
    AzureModelConfig config;
    config.seed = 3;
    config.num_functions = 60;
    config.duration_us = 15 * kMinute;
    config.iat_median_sec = 15.0;
    const Trace t = generateAzureTrace(config);
    EXPECT_EQ(computeReuseDistances(t), computeReuseDistancesNaive(t));
}

TEST(ReuseDistance, ComputeOfStandaloneAccessList)
{
    const std::vector<FunctionId> accesses = {0, 1, 0};
    const std::vector<MemMb> sizes = {10.0, 25.0};
    const auto d = computeReuseDistancesOf(accesses, sizes);
    ASSERT_EQ(d.size(), 3u);
    EXPECT_DOUBLE_EQ(d[2], 25.0);
}

TEST(ReuseDistance, FirstTouchCountEqualsUniqueFunctions)
{
    AzureModelConfig config;
    config.seed = 9;
    config.num_functions = 50;
    config.duration_us = 10 * kMinute;
    config.iat_median_sec = 10.0;
    const Trace t = generateAzureTrace(config);
    const auto d = computeReuseDistances(t);
    std::size_t first_touches = 0;
    for (double v : d) {
        if (!isFiniteReuseDistance(v))
            ++first_touches;
    }
    EXPECT_EQ(first_touches, t.functions().size());
}

}  // namespace
}  // namespace faascache

#include "trace/azure_dataset.h"

#include <gtest/gtest.h>

#include <string>

namespace faascache {
namespace {

/** Build a tiny, well-formed dataset with `minutes` bucket columns. */
AzureDatasetCsv
smallDataset(int minutes = 5)
{
    AzureDatasetCsv csv;
    std::string header = "HashOwner,HashApp,HashFunction,Trigger";
    for (int m = 1; m <= minutes; ++m)
        header += "," + std::to_string(m);
    // App a1 has two functions (memory split in half); f1 fires 1, then
    // 3 in minute 2; f2 once per minute; f3 (app a2) only once (rare).
    csv.invocations = header + "\n"
        "o1,a1,f1,http,1,3,0,0,0\n"
        "o1,a1,f2,timer,1,1,1,1,1\n"
        "o1,a2,f3,queue,0,0,1,0,0\n";
    csv.durations =
        "HashOwner,HashApp,HashFunction,Average,Count,Minimum,Maximum\n"
        "o1,a1,f1,100,10,50,600\n"
        "o1,a1,f2,200,5,100,200\n"
        "o1,a2,f3,1000,1,1000,5000\n";
    csv.memory =
        "HashOwner,HashApp,SampleCount,AverageAllocatedMb\n"
        "o1,a1,10,300\n"
        "o1,a2,2,128\n";
    return csv;
}

TEST(AzureDataset, AdaptsWellFormedInput)
{
    const AzureDatasetResult r = adaptAzureDataset(smallDataset());
    EXPECT_TRUE(r.trace.validate());
    EXPECT_TRUE(r.trace.isSorted());
    // f3 has a single invocation and is dropped.
    EXPECT_EQ(r.trace.functions().size(), 2u);
    EXPECT_EQ(r.dropped_rare, 1u);
    EXPECT_EQ(r.skipped_no_duration, 0u);
    EXPECT_EQ(r.skipped_no_memory, 0u);
}

TEST(AzureDataset, MemorySplitAcrossAppFunctions)
{
    const AzureDatasetResult r = adaptAzureDataset(smallDataset());
    // App a1 allocates 300 MB across 2 functions -> 150 MB each.
    for (const auto& fn : r.trace.functions())
        EXPECT_DOUBLE_EQ(fn.mem_mb, 150.0);
}

TEST(AzureDataset, ColdStartIsMaxMinusAverage)
{
    const AzureDatasetResult r = adaptAzureDataset(smallDataset());
    const FunctionSpec* f1 = nullptr;
    for (const auto& fn : r.trace.functions()) {
        if (fn.name.find("f1") != std::string::npos)
            f1 = &fn;
    }
    ASSERT_NE(f1, nullptr);
    EXPECT_EQ(f1->warm_us, fromMillis(100));
    EXPECT_EQ(f1->initTime(), fromMillis(500));  // 600 - 100
}

TEST(AzureDataset, MinuteBucketReplayRule)
{
    const AzureDatasetResult r = adaptAzureDataset(smallDataset());
    // f1: minute 1 has one invocation at the bucket start; minute 2 has
    // three, spaced at 20-second intervals.
    std::vector<TimeUs> f1_times;
    for (const auto& inv : r.trace.invocations()) {
        if (r.trace.function(inv.function).name.find("f1") !=
            std::string::npos) {
            f1_times.push_back(inv.arrival_us);
        }
    }
    ASSERT_EQ(f1_times.size(), 4u);
    EXPECT_EQ(f1_times[0], 0);
    EXPECT_EQ(f1_times[1], kMinute);
    EXPECT_EQ(f1_times[2], kMinute + 20 * kSecond);
    EXPECT_EQ(f1_times[3], kMinute + 40 * kSecond);
}

TEST(AzureDataset, SkipsFunctionsWithoutDurationRow)
{
    AzureDatasetCsv csv = smallDataset();
    csv.durations =
        "HashOwner,HashApp,HashFunction,Average,Count,Minimum,Maximum\n"
        "o1,a1,f1,100,10,50,600\n";
    const AzureDatasetResult r = adaptAzureDataset(csv);
    EXPECT_EQ(r.skipped_no_duration, 2u);
    EXPECT_EQ(r.trace.functions().size(), 1u);
}

TEST(AzureDataset, SkipsFunctionsWithoutAppMemory)
{
    AzureDatasetCsv csv = smallDataset();
    csv.memory = "HashOwner,HashApp,SampleCount,AverageAllocatedMb\n"
                 "o1,a1,10,300\n";
    const AzureDatasetResult r = adaptAzureDataset(csv);
    EXPECT_EQ(r.skipped_no_memory, 1u);
}

TEST(AzureDataset, MinInvocationsConfigurable)
{
    AzureDatasetOptions options;
    options.min_invocations = 1;
    const AzureDatasetResult r =
        adaptAzureDataset(smallDataset(), options);
    EXPECT_EQ(r.trace.functions().size(), 3u);
    EXPECT_EQ(r.dropped_rare, 0u);
}

TEST(AzureDataset, RejectsMissingColumns)
{
    AzureDatasetCsv csv = smallDataset();
    csv.memory = "HashOwner,HashApp,SampleCount\no1,a1,10\n";
    EXPECT_THROW(adaptAzureDataset(csv), std::runtime_error);
}

TEST(AzureDataset, RejectsMalformedNumbers)
{
    AzureDatasetCsv csv = smallDataset();
    csv.durations =
        "HashOwner,HashApp,HashFunction,Average,Count,Minimum,Maximum\n"
        "o1,a1,f1,abc,10,50,600\n";
    EXPECT_THROW(adaptAzureDataset(csv), std::runtime_error);
}

TEST(AzureDataset, RejectsEmptyFiles)
{
    AzureDatasetCsv csv;
    EXPECT_THROW(adaptAzureDataset(csv), std::runtime_error);
}

TEST(AzureDataset, LoadFromMissingFilesThrows)
{
    EXPECT_THROW(loadAzureDataset("/no/such/a.csv", "/no/such/b.csv",
                                  "/no/such/c.csv"),
                 std::runtime_error);
}

}  // namespace
}  // namespace faascache

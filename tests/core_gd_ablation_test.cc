// Tests of the Greedy-Dual priority-term ablation flags and of the
// multi-dimensional size norms plugged into GD (paper §4.1/§4.2).
#include <gtest/gtest.h>

#include "core/container_pool.h"
#include "core/greedy_dual.h"

namespace faascache {
namespace {

FunctionSpec
fn(FunctionId id, MemMb mem, double warm_ms, double init_ms)
{
    return makeFunction(id, "fn" + std::to_string(id), mem,
                        fromMillis(warm_ms), fromMillis(init_ms));
}

Container&
coldUse(ContainerPool& pool, GreedyDualPolicy& policy,
        const FunctionSpec& spec, TimeUs now)
{
    policy.onInvocationArrival(spec, now);
    Container& c = pool.add(spec, now);
    c.startInvocation(now, now + spec.cold_us);
    policy.onColdStart(c, spec, now);
    c.finishInvocation();
    return c;
}

TEST(GdAblation, NoCostTreatsAllInitEqually)
{
    GreedyDualConfig config;
    config.use_cost = false;
    GreedyDualPolicy policy(config);
    ContainerPool pool(10'000);
    // Same size and frequency, wildly different init costs.
    Container& cheap = coldUse(pool, policy, fn(0, 100, 500, 100), 0);
    Container& costly =
        coldUse(pool, policy, fn(1, 100, 500, 9'000), kSecond);
    EXPECT_DOUBLE_EQ(cheap.priority(), costly.priority());
}

TEST(GdAblation, NoSizeTreatsAllFootprintsEqually)
{
    GreedyDualConfig config;
    config.use_size = false;
    GreedyDualPolicy policy(config);
    ContainerPool pool(10'000);
    Container& small = coldUse(pool, policy, fn(0, 64, 500, 1000), 0);
    Container& large =
        coldUse(pool, policy, fn(1, 4096, 500, 1000), kSecond);
    EXPECT_DOUBLE_EQ(small.priority(), large.priority());
}

TEST(GdAblation, OnlyClockDegeneratesToRecency)
{
    GreedyDualConfig config;
    config.use_frequency = false;
    config.use_cost = false;
    config.use_size = false;
    GreedyDualPolicy policy(config);
    ContainerPool pool(10'000);
    // All containers get priority clock + 1: ties broken by last use,
    // i.e. LRU.
    Container& older = coldUse(pool, policy, fn(0, 100, 500, 1000), 0);
    coldUse(pool, policy, fn(1, 100, 500, 9000), kSecond);
    const auto victims = policy.selectVictims(pool, 50, 2 * kSecond);
    ASSERT_EQ(victims.size(), 1u);
    EXPECT_EQ(victims[0], older.id());
}

TEST(GdAblation, SizeNormChangesVictimChoice)
{
    // Two containers: one memory-light but CPU-heavy, one memory-heavy
    // but CPU-light. MemoryOnly prefers to evict the memory hog;
    // NormalizedSum (on a CPU-scarce server) prefers the CPU hog.
    FunctionSpec cpu_hog = fn(0, 64, 500, 1000);
    cpu_hog.cpu_units = 40.0;
    FunctionSpec mem_hog = fn(1, 2048, 500, 1000);
    mem_hog.cpu_units = 0.5;

    GreedyDualConfig memory_only;
    memory_only.size_norm = SizeNorm::MemoryOnly;
    GreedyDualPolicy p_mem(memory_only);
    ContainerPool pool_mem(10'000);
    coldUse(pool_mem, p_mem, cpu_hog, 0);
    Container& mem_victim = coldUse(pool_mem, p_mem, mem_hog, 0);
    auto victims = p_mem.selectVictims(pool_mem, 50, kSecond);
    ASSERT_EQ(victims.size(), 1u);
    EXPECT_EQ(victims[0], mem_victim.id());

    GreedyDualConfig normalized;
    normalized.size_norm = SizeNorm::NormalizedSum;
    normalized.server_resources = ResourceVector{48.0, 256.0 * 1024.0, 0.0};
    GreedyDualPolicy p_norm(normalized);
    ContainerPool pool_norm(1e6);
    Container& cpu_victim = coldUse(pool_norm, p_norm, cpu_hog, 0);
    coldUse(pool_norm, p_norm, mem_hog, 0);
    victims = p_norm.selectVictims(pool_norm, 50, kSecond);
    ASSERT_EQ(victims.size(), 1u);
    // cpu_hog: 40/48 + 64/256k ~ 0.83; mem_hog: 0.5/48 + 2048/256k ~ 0.018.
    EXPECT_EQ(victims[0], cpu_victim.id());
}

TEST(GdAblation, FullConfigMatchesDefault)
{
    GreedyDualConfig config;  // everything on
    GreedyDualPolicy a(config);
    GreedyDualPolicy b;
    ContainerPool pool_a(10'000), pool_b(10'000);
    const FunctionSpec f = fn(0, 100, 500, 1000);
    Container& ca = coldUse(pool_a, a, f, 0);
    Container& cb = coldUse(pool_b, b, f, 0);
    EXPECT_DOUBLE_EQ(ca.priority(), cb.priority());
}

}  // namespace
}  // namespace faascache

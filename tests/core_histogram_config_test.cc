// Configuration-sensitivity tests of the HIST policy: CoV threshold,
// histogram window, prewarm-minimum, and margins all change the
// keep-alive window in the documented direction.
#include <gtest/gtest.h>

#include "core/histogram_policy.h"

namespace faascache {
namespace {

FunctionSpec
fn()
{
    return makeFunction(0, "fn", 100, fromMillis(200), fromSeconds(2));
}

void
feedRegular(HistogramPolicy& policy, int n, TimeUs iat)
{
    for (int i = 0; i < n; ++i)
        policy.onInvocationArrival(fn(), i * iat);
}

TEST(HistogramConfig, ZeroCovThresholdMakesEverythingUnpredictable)
{
    HistogramPolicyConfig config;
    config.cov_threshold = -1.0;  // below any achievable CoV
    HistogramPolicy policy(config);
    feedRegular(policy, 10, 5 * kMinute);
    EXPECT_FALSE(policy.windowFor(0).predictable);
}

TEST(HistogramConfig, HigherMinSamplesDelaysTrust)
{
    HistogramPolicyConfig config;
    config.min_samples = 8;
    HistogramPolicy policy(config);
    feedRegular(policy, 6, 5 * kMinute);  // only 5 IAT samples
    EXPECT_FALSE(policy.windowFor(0).predictable);
    feedRegular(policy, 5, 5 * kMinute);  // enough now (but IATs shift)
    // After 8+ samples in total the function is trusted.
    HistogramPolicy fresh(config);
    feedRegular(fresh, 10, 5 * kMinute);
    EXPECT_TRUE(fresh.windowFor(0).predictable);
}

TEST(HistogramConfig, LargerTailMarginExtendsLease)
{
    HistogramPolicyConfig narrow;
    narrow.tail_margin = 1.0;
    HistogramPolicyConfig wide;
    wide.tail_margin = 2.0;
    HistogramPolicy a(narrow), b(wide);
    feedRegular(a, 10, 5 * kMinute);
    feedRegular(b, 10, 5 * kMinute);
    EXPECT_LT(a.windowFor(0).keepalive_us, b.windowFor(0).keepalive_us);
}

TEST(HistogramConfig, PrewarmMinSuppressesShortHeads)
{
    HistogramPolicyConfig config;
    config.prewarm_min_us = kHour;  // never worth unloading
    HistogramPolicy policy(config);
    feedRegular(policy, 10, 5 * kMinute);
    const KeepAliveWindow w = policy.windowFor(0);
    EXPECT_TRUE(w.predictable);
    EXPECT_EQ(w.prewarm_us, 0);
}

TEST(HistogramConfig, SmallerWindowOverflowsSooner)
{
    HistogramPolicyConfig config;
    config.num_buckets = 3;  // 3-minute window
    HistogramPolicy policy(config);
    feedRegular(policy, 10, 5 * kMinute);  // all IATs out of window
    EXPECT_FALSE(policy.windowFor(0).predictable);
}

TEST(HistogramConfig, GenericTtlConfigurable)
{
    HistogramPolicyConfig config;
    config.generic_ttl_us = 7 * kMinute;
    HistogramPolicy policy(config);
    const KeepAliveWindow w = policy.windowFor(12345);
    EXPECT_FALSE(w.predictable);
    EXPECT_EQ(w.keepalive_us, 7 * kMinute);
}

}  // namespace
}  // namespace faascache

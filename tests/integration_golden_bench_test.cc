// Golden-trace regression tests: a miniature fixed-seed bench grid
// (2 policies x 2 memory sizes) is compared field-for-field against a
// checked-in expected-results fixture, so a future perf PR cannot
// silently change simulation semantics — any legitimate semantic change
// must regenerate the fixture and show the diff in review.
//
// Regenerate with:
//   FAASCACHE_REGEN_GOLDEN=1 ./integration_golden_bench_test
// which rewrites tests/golden/bench_mini.expected in the source tree.
#include <gtest/gtest.h>

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/policy_factory.h"
#include "sim/sweep_runner.h"
#include "trace/azure_model.h"
#include "trace/samplers.h"

#ifndef FAASCACHE_GOLDEN_DIR
#error "FAASCACHE_GOLDEN_DIR must point at tests/golden"
#endif

namespace faascache {
namespace {

const char* const kFixturePath =
    FAASCACHE_GOLDEN_DIR "/bench_mini.expected";

/** The miniature bench population: fixed derived seeds, small scale. */
const Trace&
goldenPopulation()
{
    static const Trace kPopulation = [] {
        AzureModelConfig config;
        config.seed = deriveCellSeed(2021, 1);
        config.num_functions = 300;
        config.duration_us = 30 * kMinute;
        config.iat_median_sec = 60.0;
        config.max_rate_per_sec = 1.0;
        config.mem_median_mb = 64.0;
        config.mem_sigma = 0.7;
        config.mem_max_mb = 512.0;
        config.name = "golden-mini-population";
        return generateAzureTrace(config);
    }();
    return kPopulation;
}

const Trace&
goldenTrace()
{
    static const Trace kTrace =
        sampleRepresentative(goldenPopulation(), 80, deriveCellSeed(2021, 2));
    return kTrace;
}

/** The 2-policy x 2-memory golden grid. */
std::vector<SweepCell>
goldenGrid()
{
    std::vector<SweepCell> cells;
    for (MemMb memory_mb : {1024.0, 4096.0}) {
        for (PolicyKind kind : {PolicyKind::GreedyDual, PolicyKind::Ttl}) {
            SweepCell cell = makeCell(goldenTrace(), kind, memory_mb);
            cell.sim.memory_sample_interval_us = kMinute;
            cells.push_back(std::move(cell));
        }
    }
    return cells;
}

/**
 * One fixture line per cell. Integers exactly; the time-weighted mean
 * memory as hexfloat so the comparison is bit-exact across platforms.
 */
std::string
formatLine(const SimResult& r)
{
    char buffer[512];
    std::snprintf(
        buffer, sizeof buffer,
        "%s,%.0f,%" PRId64 ",%" PRId64 ",%" PRId64 ",%" PRId64 ",%" PRId64
        ",%" PRId64 ",%" PRId64 ",%" PRId64 ",%" PRId64 ",%zu,%a",
        r.policy_name.c_str(), r.memory_mb, r.warm_starts, r.cold_starts,
        r.dropped, r.evictions, r.expirations, r.prewarms,
        r.eviction_rounds, r.actual_exec_us, r.baseline_exec_us,
        r.memory_usage.size(), r.meanMemoryUsage());
    return buffer;
}

std::vector<std::string>
currentLines()
{
    std::vector<std::string> lines;
    for (const SimResult& r : runSweep(goldenGrid(), 2))
        lines.push_back(formatLine(r));
    return lines;
}

std::vector<std::string>
fixtureLines()
{
    std::vector<std::string> lines;
    std::FILE* file = std::fopen(kFixturePath, "r");
    if (file == nullptr)
        return lines;
    char buffer[512];
    while (std::fgets(buffer, sizeof buffer, file) != nullptr) {
        std::string line(buffer);
        while (!line.empty() && (line.back() == '\n' || line.back() == '\r'))
            line.pop_back();
        if (!line.empty() && line.front() != '#')
            lines.push_back(line);
    }
    std::fclose(file);
    return lines;
}

bool
regenRequested()
{
    const char* regen = std::getenv("FAASCACHE_REGEN_GOLDEN");
    return regen != nullptr && regen[0] != '\0' && regen[0] != '0';
}

TEST(GoldenBench, MiniGridMatchesCheckedInFixture)
{
    const std::vector<std::string> current = currentLines();

    if (regenRequested()) {
        std::FILE* file = std::fopen(kFixturePath, "w");
        ASSERT_NE(file, nullptr) << "cannot write " << kFixturePath;
        std::fputs(
            "# Golden mini-bench grid (2 policies x 2 memory sizes).\n"
            "# Columns: policy,memory_mb,warm,cold,dropped,evictions,\n"
            "#   expirations,prewarms,eviction_rounds,actual_exec_us,\n"
            "#   baseline_exec_us,n_memory_samples,mean_memory_mb(hexfloat)\n"
            "# Regenerate: FAASCACHE_REGEN_GOLDEN=1 "
            "./integration_golden_bench_test\n",
            file);
        for (const std::string& line : current)
            std::fprintf(file, "%s\n", line.c_str());
        std::fclose(file);
        GTEST_SKIP() << "fixture regenerated at " << kFixturePath;
    }

    const std::vector<std::string> expected = fixtureLines();
    ASSERT_FALSE(expected.empty())
        << "missing fixture " << kFixturePath
        << " — run FAASCACHE_REGEN_GOLDEN=1 ./integration_golden_bench_test";
    ASSERT_EQ(expected.size(), current.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
        EXPECT_EQ(expected[i], current[i])
            << "golden cell " << i << " diverged — simulation semantics "
            << "changed; if intentional, regenerate the fixture and call "
            << "the change out in review";
    }
}

TEST(GoldenBench, GridIsNonTrivial)
{
    // The fixture must keep covering real behaviour: warm and cold
    // starts, evictions, and memory samples all present somewhere.
    std::int64_t warm = 0, cold = 0, evictions = 0;
    std::size_t samples = 0;
    for (const SimResult& r : runSweep(goldenGrid(), 1)) {
        warm += r.warm_starts;
        cold += r.cold_starts;
        evictions += r.evictions;
        samples += r.memory_usage.size();
    }
    EXPECT_GT(warm, 0);
    EXPECT_GT(cold, 0);
    EXPECT_GT(evictions, 0);
    EXPECT_GT(samples, 0u);
}

TEST(GoldenBench, GridIsJobsInvariant)
{
    // The golden values must not depend on the worker count.
    EXPECT_EQ(currentLines(), [] {
        std::vector<std::string> lines;
        for (const SimResult& r : runSweep(goldenGrid(), 8))
            lines.push_back(formatLine(r));
        return lines;
    }());
}

}  // namespace
}  // namespace faascache

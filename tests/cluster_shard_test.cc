// Sharded cluster engine (DESIGN.md §4i): partition determinism, the
// cross-shard mailbox's canonical delivery order, barrier mechanics,
// and — the load-bearing property — byte-identical results for every
// shard count, clean and under fault plans + overload defenses, with
// the runtime invariant auditor attached and silent.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/policy_factory.h"
#include "engine/event_engine.h"
#include "platform/cluster.h"
#include "platform/cluster_shard.h"
#include "platform/experiment_checkpoint.h"
#include "platform/fault_injection.h"
#include "platform/overload/circuit_breaker.h"
#include "platform/server.h"
#include "trace/azure_model.h"
#include "trace/function_spec.h"
#include "trace/trace.h"
#include "util/audit.h"

namespace faascache {
namespace {

AzureModelConfig
workloadConfig()
{
    AzureModelConfig config;
    config.seed = 47;
    config.num_functions = 60;
    config.duration_us = 25 * kMinute;
    config.iat_median_sec = 20.0;
    return config;
}

const Trace&
azureWorkload()
{
    static const Trace kTrace = generateAzureTrace(workloadConfig());
    return kTrace;
}

FaultPlan
clusterFaults()
{
    FaultPlan plan;
    plan.spawn_failure_prob = 0.1;
    plan.spawn_retry_delay_us = 150 * kMillisecond;
    plan.straggler_prob = 0.15;
    plan.straggler_multiplier = 2.5;
    plan.crashes.push_back(CrashEvent{0, 5 * kMinute, 2 * kMinute});
    plan.crashes.push_back(CrashEvent{2, 12 * kMinute, 90 * kSecond});
    plan.oom_kills.push_back(OomKillEvent{1, 8 * kMinute});
    return plan;
}

ClusterConfig
baseConfig(std::size_t num_servers)
{
    ClusterConfig config;
    config.num_servers = num_servers;
    config.seed = 77;
    config.server.cores = 2;
    config.server.memory_mb = 1'500.0;
    return config;
}

void
armDefenses(ClusterConfig& config)
{
    config.faults = clusterFaults();
    config.failover.shed_queue_depth = 24;
    config.failover.retry_budget.ratio = 0.5;
    config.failover.retry_budget.burst = 16.0;
    config.failover.breaker.failure_threshold = 8;
    config.failover.breaker.open_duration_us = 10 * kSecond;
}

std::string
payloadFor(const ClusterConfig& config)
{
    return encodeClusterCheckpointPayload(
        "cell", runCluster(azureWorkload(), PolicyKind::GreedyDual,
                           config));
}

// --- Partition helpers. ---------------------------------------------

TEST(ClusterShard, PartitionIsContiguousBalancedAndInvertible)
{
    for (const std::size_t servers : {1u, 3u, 7u, 8u, 64u, 301u}) {
        for (const std::size_t shards : {1u, 2u, 4u, 8u, 64u, 999u}) {
            const std::size_t effective =
                effectiveShards(shards, servers);
            ASSERT_GE(effective, 1u);
            ASSERT_LE(effective, servers);

            std::size_t covered = 0;
            std::size_t max_count = 0;
            std::size_t min_count = servers;
            for (std::size_t shard = 0; shard < effective; ++shard) {
                const auto [first, count] =
                    shardServerRange(shard, effective, servers);
                ASSERT_EQ(first, covered)
                    << "ranges must be contiguous in shard order";
                ASSERT_GE(count, 1u);
                max_count = std::max(max_count, count);
                min_count = std::min(min_count, count);
                for (std::size_t s = first; s < first + count; ++s) {
                    ASSERT_EQ(shardOfServer(s, effective, servers),
                              shard)
                        << "shardOfServer must invert the ranges";
                }
                covered += count;
            }
            ASSERT_EQ(covered, servers) << "every server owned once";
            ASSERT_LE(max_count - min_count, 1u)
                << "partition must be balanced";
        }
    }
}

// --- Mailbox: canonical, poster-independent delivery order. ---------

TEST(ClusterShard, MailboxSortsDeliveriesCanonicallyPerWindow)
{
    auto owner = [](std::size_t server) { return server % 2; };
    auto mail = [](ShardMail::Kind kind, std::size_t index, int attempt,
                   std::size_t target, TimeUs at) {
        ShardMail m;
        m.kind = kind;
        m.index = index;
        m.attempt = attempt;
        m.target = target;
        m.at_us = at;
        return m;
    };

    // The same messages posted from different shards in different
    // interleavings must be delivered identically.
    std::vector<std::vector<ShardMail>> inboxes[2];
    for (int variant = 0; variant < 2; ++variant) {
        ShardMailbox box(2);
        std::vector<ShardMail> batch = {
            mail(ShardMail::Kind::RetryFire, 9, 2, 2, 500),
            mail(ShardMail::Kind::ForwardOffer, 14, 1, 4, 0),
            mail(ShardMail::Kind::RetryFire, 3, 1, 2, 500),
            mail(ShardMail::Kind::ForwardOffer, 2, 0, 2, 0),
            mail(ShardMail::Kind::RetryFire, 7, 1, 6, 120),
        };
        if (variant == 1) {
            std::reverse(batch.begin(), batch.end());
            for (ShardMail& m : batch)
                box.outbox(1).push_back(m);
        } else {
            // Split across posters instead.
            box.outbox(0).push_back(batch[0]);
            box.outbox(1).push_back(batch[1]);
            box.outbox(0).push_back(batch[2]);
            box.outbox(1).push_back(batch[3]);
            box.outbox(0).push_back(batch[4]);
        }
        ASSERT_TRUE(box.anyPosted());
        box.exchange(owner);
        ASSERT_FALSE(box.anyPosted()) << "exchange consumes the window";
        inboxes[variant].push_back(box.inbox(0));
        inboxes[variant].push_back(box.inbox(1));
    }
    for (int shard = 0; shard < 2; ++shard) {
        const auto& a = inboxes[0][shard];
        const auto& b = inboxes[1][shard];
        ASSERT_EQ(a.size(), b.size());
        for (std::size_t i = 0; i < a.size(); ++i) {
            EXPECT_EQ(a[i].index, b[i].index) << "shard " << shard;
            EXPECT_EQ(a[i].at_us, b[i].at_us) << "shard " << shard;
        }
    }

    // Canonical order inside one inbox: offers first by (index,
    // attempt), then retries by fire time.
    const auto& even = inboxes[0][0];
    ASSERT_EQ(even.size(), 5u);  // every target above is even
    EXPECT_EQ(even[0].kind, ShardMail::Kind::ForwardOffer);
    EXPECT_EQ(even[0].index, 2u);
    EXPECT_EQ(even[1].kind, ShardMail::Kind::ForwardOffer);
    EXPECT_EQ(even[1].index, 14u);
    EXPECT_EQ(even[2].kind, ShardMail::Kind::RetryFire);
    EXPECT_EQ(even[2].index, 7u);  // at_us 120 before the two at 500
    EXPECT_EQ(even[3].index, 3u);  // index breaks the at_us tie (3 < 9)
    EXPECT_EQ(even[4].index, 9u);

    // Windows never mix: a second exchange only carries new posts.
    ShardMailbox box(2);
    box.outbox(0).push_back(
        mail(ShardMail::Kind::ForwardOffer, 1, 0, 0, 0));
    box.exchange(owner);
    ASSERT_EQ(box.inbox(0).size(), 1u);
    box.outbox(1).push_back(
        mail(ShardMail::Kind::ForwardOffer, 8, 0, 0, 0));
    box.exchange(owner);
    ASSERT_EQ(box.inbox(0).size(), 1u);
    EXPECT_EQ(box.inbox(0)[0].index, 8u);
}

// --- Barrier: leader section and abort wake-up. ---------------------

TEST(ClusterShard, BarrierRunsLeaderOncePerRoundAndAbortWakes)
{
    constexpr std::size_t kParties = 4;
    constexpr int kRounds = 25;
    ShardBarrier barrier(kParties);
    std::vector<int> leader_runs(1, 0);
    std::vector<std::thread> threads;
    threads.reserve(kParties);
    for (std::size_t p = 0; p < kParties; ++p) {
        threads.emplace_back([&] {
            for (int r = 0; r < kRounds; ++r)
                barrier.arriveAndWait([&] { ++leader_runs[0]; });
        });
    }
    for (auto& t : threads)
        t.join();
    EXPECT_EQ(leader_runs[0], kRounds)
        << "exactly one leader execution per round";

    ShardBarrier aborting(2);
    std::thread waiter([&] {
        EXPECT_THROW(aborting.arriveAndWait(), ShardAborted);
    });
    aborting.abort();
    waiter.join();
    EXPECT_THROW(aborting.arriveAndWait(), ShardAborted)
        << "an aborted barrier stays aborted";
}

// --- Engine/breaker helpers the windowed loop leans on. -------------

TEST(ClusterShard, EventCoreHasEventBeforeHorizon)
{
    EventCore<int> events;
    EXPECT_FALSE(events.hasEventBefore(1'000'000));
    events.schedule(500, 0, 0);
    EXPECT_TRUE(events.hasEventBefore(501));
    EXPECT_FALSE(events.hasEventBefore(500))
        << "strictly-before: an event AT the horizon belongs to the "
           "next window";
}

TEST(ClusterShard, BreakerPeekAllowNeverClaimsProbe)
{
    CircuitBreakerConfig config;
    config.failure_threshold = 2;
    config.open_duration_us = 1'000;
    CircuitBreaker breaker(config);
    breaker.recordFailure(0);
    breaker.recordFailure(0);  // opens
    EXPECT_EQ(breaker.state(10), BreakerState::Open);
    EXPECT_FALSE(breaker.peekAllow(10));
    // Half-open: peeking any number of times must not consume the
    // probe slot the next allowRequest claims.
    EXPECT_TRUE(breaker.peekAllow(1'000));
    EXPECT_TRUE(breaker.peekAllow(1'000));
    EXPECT_EQ(breaker.probes(), 0);
    EXPECT_TRUE(breaker.allowRequest(1'000));
    EXPECT_EQ(breaker.probes(), 1);
    EXPECT_FALSE(breaker.peekAllow(1'001))
        << "after the claim, the slot is gone for a cool-down";
}

// --- Shard-count invariance (the headline property). ----------------

TEST(ClusterShard, CleanShardedMatchesLegacyForAllBalancers)
{
    for (const LoadBalancing balancing :
         {LoadBalancing::Random, LoadBalancing::RoundRobin,
          LoadBalancing::FunctionHash}) {
        ClusterConfig legacy = baseConfig(4);
        legacy.balancing = balancing;
        const std::string oracle = payloadFor(legacy);
        for (const std::size_t shards : {1u, 2u, 4u, 8u}) {
            ClusterConfig sharded = legacy;
            sharded.shards = shards;
            EXPECT_EQ(payloadFor(sharded), oracle)
                << "clean sharded run diverged from legacy: balancing "
                << static_cast<int>(balancing) << ", shards " << shards;
        }
    }
}

TEST(ClusterShard, WindowedRunIsShardCountInvariantWithAuditorOn)
{
    for (const LoadBalancing balancing :
         {LoadBalancing::Random, LoadBalancing::RoundRobin,
          LoadBalancing::FunctionHash}) {
        Auditor audit(AuditMode::On);
        ClusterConfig config = baseConfig(4);
        config.balancing = balancing;
        armDefenses(config);
        config.server.audit = &audit;

        config.shards = 1;
        const std::string oracle = payloadFor(config);
        for (const std::size_t shards : {2u, 3u, 4u, 8u}) {
            ClusterConfig other = config;
            other.shards = shards;
            EXPECT_EQ(payloadFor(other), oracle)
                << "windowed run diverged: balancing "
                << static_cast<int>(balancing) << ", shards " << shards;
        }
        EXPECT_EQ(audit.violationCount(), 0)
            << "auditor-on sharded runs must be violation-free: "
            << audit.report();
    }
}

// --- Horizon-boundary events land exactly on a barrier. -------------

TEST(ClusterShard, HorizonBoundaryRetriesFireOnBarrierInstant)
{
    // Jitter off: every retry backs off by exactly base_backoff_us
    // << attempt — attempt-0 retries of requests spilled at a crash
    // (which fires at a multiple of H below) land exactly on the next
    // barrier instant. The run must stay shard-count invariant and
    // actually exercise retries.
    ClusterConfig config = baseConfig(3);
    config.failover.backoff_jitter_frac = 0.0;
    config.failover.base_backoff_us = 30 * kSecond;  // H
    config.faults.crashes.push_back(
        CrashEvent{0, 5 * kMinute, 2 * kMinute});  // 10 H, restart 4 H
    config.balancing = LoadBalancing::FunctionHash;

    config.shards = 1;
    const std::string oracle = payloadFor(config);
    ClusterResult witness;
    for (const std::size_t shards : {2u, 3u, 8u}) {
        ClusterConfig other = config;
        other.shards = shards;
        EXPECT_EQ(payloadFor(other), oracle)
            << "boundary-aligned retries diverged at shards " << shards;
        witness = runCluster(azureWorkload(), PolicyKind::GreedyDual,
                             other);
    }
    EXPECT_GT(witness.retries, 0)
        << "the scenario must actually schedule barrier-aligned "
           "retries";
}

// --- Empty shards still participate in barriers. --------------------

TEST(ClusterShard, EmptyShardsParticipateAndStayInvariant)
{
    // Two functions hashed across 8 servers: most servers (and with 8
    // shards, most shards) never receive an arrival, yet their shards
    // must keep arriving at every barrier for the run to terminate.
    Trace trace("empty-shards");
    for (FunctionId f = 0; f < 2; ++f) {
        trace.addFunction(makeFunction(f, "f" + std::to_string(f),
                                       300.0, 500 * kMillisecond,
                                       2 * kSecond));
    }
    for (int i = 0; i < 40; ++i)
        trace.addInvocation(i % 2, (i + 1) * 10 * kSecond);

    ClusterConfig config = baseConfig(8);
    config.balancing = LoadBalancing::FunctionHash;
    armDefenses(config);

    Auditor audit(AuditMode::On);
    config.server.audit = &audit;
    config.shards = 1;
    const std::string oracle = encodeClusterCheckpointPayload(
        "cell", runCluster(trace, PolicyKind::GreedyDual, config));
    for (const std::size_t shards : {2u, 4u, 8u}) {
        ClusterConfig other = config;
        other.shards = shards;
        EXPECT_EQ(encodeClusterCheckpointPayload(
                      "cell", runCluster(trace, PolicyKind::GreedyDual,
                                         other)),
                  oracle)
            << "empty-shard run diverged at shards " << shards;
    }
    EXPECT_EQ(audit.violationCount(), 0) << audit.report();
}

}  // namespace
}  // namespace faascache

// End-to-end checks that the simulator reproduces the paper's
// qualitative findings (§7.1): Greedy-Dual wins on diverse
// representative workloads, recency (LRU) is the right signal for rare
// and random workloads, and all caching policies beat the 10-minute TTL
// at constrained sizes.
#include <gtest/gtest.h>

#include "core/policy_factory.h"
#include "sim/simulator.h"
#include "trace/azure_model.h"
#include "trace/samplers.h"

namespace faascache {
namespace {

const Trace&
population()
{
    static const Trace kPopulation = [] {
        AzureModelConfig config;
        config.seed = 42;
        config.num_functions = 800;
        config.duration_us = kHour;
        config.iat_median_sec = 120.0;
        config.max_rate_per_sec = 1.0;
        return generateAzureTrace(config);
    }();
    return kPopulation;
}

SimResult
run(const Trace& trace, PolicyKind kind, MemMb memory)
{
    SimulatorConfig config;
    config.memory_mb = memory;
    config.memory_sample_interval_us = 0;
    return simulateTrace(trace, makePolicy(kind), config);
}

/** A mid-range cache size: half the size-weighted working set. */
MemMb
midSize(const Trace& trace)
{
    return trace.stats().total_unique_mem_mb / 2;
}

TEST(PaperResults, GdBeatsTtlOnRepresentativeWorkload)
{
    const Trace rep = sampleRepresentative(population(), 200, 1);
    const MemMb mem = midSize(rep);
    const SimResult gd = run(rep, PolicyKind::GreedyDual, mem);
    const SimResult ttl = run(rep, PolicyKind::Ttl, mem);
    EXPECT_LT(gd.coldStartPercent(), ttl.coldStartPercent());
    EXPECT_LT(gd.execTimeIncreasePercent(), ttl.execTimeIncreasePercent());
}

TEST(PaperResults, CachingPoliciesBeatTtlOnRareWorkload)
{
    // Rare functions nearly always expire under a 10-minute TTL; any
    // resource-conserving policy keeps them warm (paper: ~2x better at
    // the larger cache sizes of Figure 5b, where eviction pressure no
    // longer masks the expiry behaviour).
    const Trace rare = sampleRare(population(), 300, 1);
    const MemMb mem = rare.stats().total_unique_mem_mb;
    const SimResult lru = run(rare, PolicyKind::Lru, mem);
    const SimResult ttl = run(rare, PolicyKind::Ttl, mem);
    EXPECT_LT(lru.coldStartPercent(), ttl.coldStartPercent());
}

TEST(PaperResults, LruCompetitiveOnRandomWorkload)
{
    const Trace rnd = sampleRandom(population(), 150, 2);
    const MemMb mem = midSize(rnd);
    const SimResult lru = run(rnd, PolicyKind::Lru, mem);
    const SimResult ttl = run(rnd, PolicyKind::Ttl, mem);
    EXPECT_LE(lru.coldStartPercent(), ttl.coldStartPercent() * 1.05);
}

TEST(PaperResults, ColdStartsDecreaseWithMemoryForGd)
{
    const Trace rep = sampleRepresentative(population(), 200, 1);
    const MemMb base = midSize(rep);
    double prev = 101.0;
    for (double factor : {0.25, 0.5, 1.0, 2.0}) {
        const SimResult r =
            run(rep, PolicyKind::GreedyDual, base * factor);
        EXPECT_LE(r.coldStartPercent(), prev * 1.02)
            << "at factor " << factor;
        prev = r.coldStartPercent();
    }
}

TEST(PaperResults, AllPoliciesServeEveryRequestGivenAmpleMemory)
{
    const Trace rep = sampleRepresentative(population(), 100, 3);
    const MemMb ample = rep.stats().total_unique_mem_mb * 4;
    for (PolicyKind kind : allPolicyKinds()) {
        const SimResult r = run(rep, kind, ample);
        EXPECT_EQ(r.dropped, 0) << policyKindName(kind);
        EXPECT_EQ(r.total(),
                  static_cast<std::int64_t>(rep.invocations().size()))
            << policyKindName(kind);
    }
}

TEST(PaperResults, ResourceConservingPoliciesHaveNoExpirations)
{
    const Trace rep = sampleRepresentative(population(), 100, 3);
    for (PolicyKind kind :
         {PolicyKind::GreedyDual, PolicyKind::Lru, PolicyKind::Lfu,
          PolicyKind::Size, PolicyKind::Landlord}) {
        const SimResult r = run(rep, kind, midSize(rep));
        EXPECT_EQ(r.expirations, 0) << policyKindName(kind);
    }
}

TEST(PaperResults, TtlExpiresRareFunctionsEvenWithAmpleMemory)
{
    // TTL is not resource conserving: given memory for the entire
    // working set, it still terminates rare functions' containers and
    // re-cold-starts them, unlike every caching policy.
    const Trace rare = sampleRare(population(), 300, 1);
    const MemMb ample = rare.stats().total_unique_mem_mb * 4;
    const SimResult ttl = run(rare, PolicyKind::Ttl, ample);
    EXPECT_GT(ttl.expirations, 0);
    const SimResult lru = run(rare, PolicyKind::Lru, ample);
    EXPECT_LT(lru.cold_starts, ttl.cold_starts);
}

}  // namespace
}  // namespace faascache

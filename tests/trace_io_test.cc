#include "trace/trace_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace faascache {
namespace {

Trace
sampleTrace()
{
    Trace t("io-sample");
    t.addFunction(makeFunction(0, "alpha, with comma", 128, fromMillis(50),
                               fromMillis(200)));
    t.addFunction(makeFunction(1, "beta", 256, fromSeconds(1),
                               fromSeconds(2)));
    t.addInvocation(0, 0);
    t.addInvocation(1, 1'500'000);
    t.addInvocation(0, 3'000'000);
    return t;
}

TEST(TraceIo, RoundTripThroughText)
{
    const Trace original = sampleTrace();
    std::ostringstream out;
    writeTrace(original, out);
    const Trace loaded = readTrace(out.str());

    EXPECT_EQ(loaded.name(), original.name());
    ASSERT_EQ(loaded.functions().size(), original.functions().size());
    for (std::size_t i = 0; i < original.functions().size(); ++i) {
        EXPECT_EQ(loaded.functions()[i].name, original.functions()[i].name);
        EXPECT_EQ(loaded.functions()[i].mem_mb,
                  original.functions()[i].mem_mb);
        EXPECT_EQ(loaded.functions()[i].warm_us,
                  original.functions()[i].warm_us);
        EXPECT_EQ(loaded.functions()[i].cold_us,
                  original.functions()[i].cold_us);
    }
    ASSERT_EQ(loaded.invocations().size(), original.invocations().size());
    for (std::size_t i = 0; i < original.invocations().size(); ++i)
        EXPECT_EQ(loaded.invocations()[i], original.invocations()[i]);
}

TEST(TraceIo, ResourceDimensionsRoundTrip)
{
    Trace t("v2");
    FunctionSpec spec =
        makeFunction(0, "multi", 128, fromMillis(50), fromMillis(100));
    spec.cpu_units = 3.5;
    spec.io_units = 12.0;
    t.addFunction(spec);
    std::ostringstream out;
    writeTrace(t, out);
    const Trace loaded = readTrace(out.str());
    ASSERT_EQ(loaded.functions().size(), 1u);
    EXPECT_DOUBLE_EQ(loaded.functions()[0].cpu_units, 3.5);
    EXPECT_DOUBLE_EQ(loaded.functions()[0].io_units, 12.0);
}

TEST(TraceIo, ReadsVersion1WithDefaults)
{
    const Trace loaded = readTrace(
        "faascache-trace,1,old\nfunction,0,legacy,64,1000,2000\n");
    ASSERT_EQ(loaded.functions().size(), 1u);
    EXPECT_DOUBLE_EQ(loaded.functions()[0].cpu_units, 1.0);
    EXPECT_DOUBLE_EQ(loaded.functions()[0].io_units, 0.0);
}

TEST(TraceIo, RejectsMissingHeader)
{
    EXPECT_THROW(readTrace("function,0,x,1,1,1\n"), std::runtime_error);
    EXPECT_THROW(readTrace(""), std::runtime_error);
}

TEST(TraceIo, RejectsWrongVersion)
{
    EXPECT_THROW(readTrace("faascache-trace,99,x\n"), std::runtime_error);
}

TEST(TraceIo, RejectsBadArity)
{
    EXPECT_THROW(readTrace("faascache-trace,1,x\nfunction,0,a,64\n"),
                 std::runtime_error);
    EXPECT_THROW(readTrace("faascache-trace,1,x\ninvocation,0\n"),
                 std::runtime_error);
}

TEST(TraceIo, RejectsUnknownRowKind)
{
    EXPECT_THROW(readTrace("faascache-trace,1,x\nbogus,1\n"),
                 std::runtime_error);
}

TEST(TraceIo, RejectsNonDenseFunctionIds)
{
    EXPECT_THROW(
        readTrace("faascache-trace,1,x\nfunction,3,a,64,1000,2000\n"),
        std::runtime_error);
}

TEST(TraceIo, RejectsInvocationOfUnknownFunction)
{
    EXPECT_THROW(readTrace("faascache-trace,1,x\ninvocation,7,1000\n"),
                 std::runtime_error);
}

TEST(TraceIo, RejectsMalformedNumbers)
{
    EXPECT_THROW(
        readTrace("faascache-trace,1,x\nfunction,0,a,64MB,1000,2000\n"),
        std::runtime_error);
}

// Capture the message of the runtime_error thrown by `fn`.
template <typename Fn>
std::string
errorMessage(Fn&& fn)
{
    try {
        fn();
    } catch (const std::runtime_error& e) {
        return e.what();
    }
    return "";
}

TEST(TraceIo, ErrorsCarryLineNumbers)
{
    const std::string msg = errorMessage([] {
        readTrace("faascache-trace,1,x\n"
                  "function,0,a,64,1000,2000\n"
                  "invocation,0,oops\n");
    });
    EXPECT_NE(msg.find("line 3"), std::string::npos) << msg;
    EXPECT_NE(msg.find("oops"), std::string::npos) << msg;
}

TEST(TraceIo, LineNumbersSkipBlankLines)
{
    const std::string msg = errorMessage([] {
        readTrace("faascache-trace,1,x\n"
                  "\n"
                  "\n"
                  "bogus,1\n");
    });
    EXPECT_NE(msg.find("line 4"), std::string::npos) << msg;
}

TEST(TraceIo, RejectsNonNumericInteger)
{
    // std::stoll would throw std::invalid_argument here; the reader must
    // translate it into its own descriptive runtime_error.
    const std::string msg = errorMessage([] {
        readTrace("faascache-trace,1,x\nfunction,zero,a,64,1000,2000\n");
    });
    EXPECT_NE(msg.find("bad integer"), std::string::npos) << msg;
    EXPECT_NE(msg.find("line 2"), std::string::npos) << msg;
}

TEST(TraceIo, RejectsOutOfRangeInteger)
{
    const std::string msg = errorMessage([] {
        readTrace("faascache-trace,1,x\n"
                  "function,0,a,64,99999999999999999999999999,2000\n");
    });
    EXPECT_NE(msg.find("out of range"), std::string::npos) << msg;
}

TEST(TraceIo, ArityErrorsReportFieldCount)
{
    const std::string msg = errorMessage([] {
        readTrace("faascache-trace,1,x\nfunction,0,a,64\n");
    });
    EXPECT_NE(msg.find("6 or 8 fields"), std::string::npos) << msg;
    EXPECT_NE(msg.find("got 4"), std::string::npos) << msg;
}

TEST(TraceIo, LoadCorruptFileReportsPath)
{
    const std::string path =
        testing::TempDir() + "/faascache_io_corrupt.csv";
    {
        std::ofstream out(path);
        out << "faascache-trace,2,corrupt\n"
            << "function,0,a,64,1000,2000,1,0\n"
            << "invocation,0,not-a-time\n";
    }
    const std::string msg =
        errorMessage([&] { loadTraceFile(path); });
    EXPECT_NE(msg.find(path), std::string::npos) << msg;
    EXPECT_NE(msg.find("line 3"), std::string::npos) << msg;
    std::remove(path.c_str());
}

TEST(TraceIo, LoadTruncatedFileThrows)
{
    const std::string path =
        testing::TempDir() + "/faascache_io_truncated.csv";
    {
        std::ofstream out(path);
        out << "faascache-tra";  // header cut mid-write
    }
    EXPECT_THROW(loadTraceFile(path), std::runtime_error);
    std::remove(path.c_str());
}

TEST(TraceIo, FileRoundTrip)
{
    const Trace original = sampleTrace();
    const std::string path = testing::TempDir() + "/faascache_io_test.csv";
    saveTraceFile(original, path);
    const Trace loaded = loadTraceFile(path);
    EXPECT_EQ(loaded.invocations().size(), original.invocations().size());
    EXPECT_EQ(loaded.functions().size(), original.functions().size());
    std::remove(path.c_str());
}

TEST(TraceIo, LoadMissingFileThrows)
{
    EXPECT_THROW(loadTraceFile("/nonexistent/path/trace.csv"),
                 std::runtime_error);
}

}  // namespace
}  // namespace faascache

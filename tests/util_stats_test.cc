#include "util/stats.h"

#include <gtest/gtest.h>

namespace faascache {
namespace {

TEST(Summarize, EmptyInput)
{
    const Summary s = summarize({});
    EXPECT_EQ(s.count, 0u);
    EXPECT_EQ(s.mean, 0.0);
    EXPECT_EQ(s.max, 0.0);
}

TEST(Summarize, SingleValue)
{
    const Summary s = summarize({3.5});
    EXPECT_EQ(s.count, 1u);
    EXPECT_DOUBLE_EQ(s.mean, 3.5);
    EXPECT_DOUBLE_EQ(s.min, 3.5);
    EXPECT_DOUBLE_EQ(s.max, 3.5);
    EXPECT_DOUBLE_EQ(s.p50, 3.5);
    EXPECT_EQ(s.stddev, 0.0);
}

TEST(Summarize, KnownValues)
{
    const Summary s = summarize({1, 2, 3, 4, 5});
    EXPECT_DOUBLE_EQ(s.mean, 3.0);
    EXPECT_DOUBLE_EQ(s.min, 1.0);
    EXPECT_DOUBLE_EQ(s.max, 5.0);
    EXPECT_DOUBLE_EQ(s.p50, 3.0);
    EXPECT_NEAR(s.stddev, 1.5811388300841898, 1e-12);
}

TEST(Summarize, UnsortedInputHandled)
{
    const Summary s = summarize({5, 1, 4, 2, 3});
    EXPECT_DOUBLE_EQ(s.p50, 3.0);
    EXPECT_DOUBLE_EQ(s.min, 1.0);
}

TEST(PercentileSorted, InterpolatesBetweenPoints)
{
    const std::vector<double> v = {0.0, 10.0};
    EXPECT_DOUBLE_EQ(percentileSorted(v, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(percentileSorted(v, 0.5), 5.0);
    EXPECT_DOUBLE_EQ(percentileSorted(v, 1.0), 10.0);
    EXPECT_DOUBLE_EQ(percentileSorted(v, 0.25), 2.5);
}

TEST(PercentileSorted, ClampsP)
{
    const std::vector<double> v = {1.0, 2.0, 3.0};
    EXPECT_DOUBLE_EQ(percentileSorted(v, -0.5), 1.0);
    EXPECT_DOUBLE_EQ(percentileSorted(v, 1.5), 3.0);
}

TEST(ExponentialSmoother, InitializesToFirstSample)
{
    ExponentialSmoother ema(0.2);
    EXPECT_FALSE(ema.initialized());
    EXPECT_DOUBLE_EQ(ema.update(10.0), 10.0);
    EXPECT_TRUE(ema.initialized());
}

TEST(ExponentialSmoother, BlendsSubsequentSamples)
{
    ExponentialSmoother ema(0.5);
    ema.update(10.0);
    EXPECT_DOUBLE_EQ(ema.update(20.0), 15.0);
    EXPECT_DOUBLE_EQ(ema.update(15.0), 15.0);
}

TEST(ExponentialSmoother, AlphaOneTracksExactly)
{
    ExponentialSmoother ema(1.0);
    ema.update(3.0);
    EXPECT_DOUBLE_EQ(ema.update(7.0), 7.0);
}

TEST(ExponentialSmoother, ConvergesToConstantInput)
{
    ExponentialSmoother ema(0.3);
    ema.update(100.0);
    for (int i = 0; i < 100; ++i)
        ema.update(5.0);
    EXPECT_NEAR(ema.value(), 5.0, 1e-6);
}

}  // namespace
}  // namespace faascache

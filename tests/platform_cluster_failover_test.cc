#include "platform/cluster.h"

#include <gtest/gtest.h>

#include "platform/load_generator.h"
#include "util/audit.h"

namespace faascache {
namespace {

ClusterConfig
config(LoadBalancing balancing = LoadBalancing::RoundRobin,
       std::size_t servers = 4)
{
    ClusterConfig c;
    c.num_servers = servers;
    c.server.cores = 4;
    c.server.memory_mb = 512;
    c.balancing = balancing;
    return c;
}

/**
 * Every invocation resolved exactly once, fleet-wide. Crash-aborted
 * work does not enter the sum: its serve counters are rolled back on
 * abort and the front end re-dispatches (or fails) it, so it resolves
 * through one of the four terms below anyway.
 */
void
expectConservation(const ClusterResult& r, const Trace& t)
{
    std::int64_t resolved = r.shed_requests + r.failed_requests;
    for (const auto& s : r.servers)
        resolved += s.served() + s.dropped();
    EXPECT_EQ(resolved, static_cast<std::int64_t>(t.invocations().size()));
}

TEST(ClusterFailover, FaultAwarePathMatchesLegacyWithoutFaults)
{
    // Force the interleaved path with admission control that never
    // triggers; the result must match the legacy split replay.
    const Trace t = skewedFrequencyWorkload(10 * kMinute);
    for (LoadBalancing lb : {LoadBalancing::Random,
                             LoadBalancing::RoundRobin,
                             LoadBalancing::FunctionHash}) {
        const ClusterResult legacy =
            runCluster(t, PolicyKind::GreedyDual, config(lb));
        ClusterConfig forced = config(lb);
        forced.failover.shed_queue_depth = forced.server.queue_capacity;
        const ClusterResult fault_aware =
            runCluster(t, PolicyKind::GreedyDual, forced);

        EXPECT_EQ(legacy.warmStarts(), fault_aware.warmStarts());
        EXPECT_EQ(legacy.coldStarts(), fault_aware.coldStarts());
        EXPECT_EQ(legacy.dropped(), fault_aware.dropped());
        EXPECT_EQ(fault_aware.retries, 0);
        EXPECT_EQ(fault_aware.failovers, 0);
        EXPECT_EQ(fault_aware.shed_requests, 0);
        ASSERT_EQ(legacy.servers.size(), fault_aware.servers.size());
        for (std::size_t s = 0; s < legacy.servers.size(); ++s) {
            EXPECT_EQ(legacy.servers[s].latencies_sec,
                      fault_aware.servers[s].latencies_sec)
                << "server " << s;
        }
    }
}

TEST(ClusterFailover, CrashMidTraceRedispatchesWork)
{
    const Trace t = skewedFrequencyWorkload(20 * kMinute);
    ClusterConfig c = config();
    c.faults.crashes.push_back({1, 5 * kMinute, 5 * kMinute});
    const ClusterResult r = runCluster(t, PolicyKind::GreedyDual, c);

    EXPECT_EQ(r.robustness().crashes, 1);
    EXPECT_EQ(r.robustness().restarts, 1);
    EXPECT_EQ(r.unavailabilityUs(), 5 * kMinute);
    // The crash spilled work that was re-dispatched...
    EXPECT_GT(r.retries, 0);
    // ...and arrivals primary-routed to the down server failed over.
    EXPECT_GT(r.failovers, 0);
    expectConservation(r, t);
}

TEST(ClusterFailover, PermanentCrashLeavesFleetDegraded)
{
    const Trace t = skewedFrequencyWorkload(20 * kMinute);
    ClusterConfig c = config();
    c.faults.crashes.push_back({2, 5 * kMinute, 0});  // never restarts
    const ClusterResult r = runCluster(t, PolicyKind::GreedyDual, c);

    EXPECT_EQ(r.robustness().crashes, 1);
    EXPECT_EQ(r.robustness().restarts, 0);
    EXPECT_GT(r.failovers, 0);
    // The dead server serves nothing after the crash: its share moved
    // to the survivors.
    expectConservation(r, t);
}

TEST(ClusterFailover, AllServersDownFailsRequests)
{
    Trace t("t");
    t.addFunction(makeFunction(0, "f", 100, fromSeconds(1),
                               fromSeconds(1)));
    for (int i = 0; i < 10; ++i)
        t.addInvocation(0, kMinute + i * kSecond);
    ClusterConfig c = config(LoadBalancing::RoundRobin, 2);
    // Both servers die before the arrivals and never return.
    c.faults.crashes.push_back({0, kSecond, 0});
    c.faults.crashes.push_back({1, kSecond, 0});
    c.failover.max_retries = 2;
    const ClusterResult r = runCluster(t, PolicyKind::GreedyDual, c);

    EXPECT_EQ(r.failed_requests, 10);
    EXPECT_EQ(r.warmStarts() + r.coldStarts(), 0);
    // Each of the 10 requests burned its full retry budget.
    EXPECT_EQ(r.retries, 10 * c.failover.max_retries);
    expectConservation(r, t);
}

TEST(ClusterFailover, AdmissionControlShedsOverload)
{
    // One-core servers with long executions: queues grow fast, and a
    // tight high-water mark sheds the excess instead of buffering it.
    Trace t("burst");
    t.addFunction(makeFunction(0, "slow", 100, fromSeconds(30),
                               fromSeconds(1)));
    for (int i = 0; i < 200; ++i)
        t.addInvocation(0, i * 100 * kMillisecond);
    ClusterConfig c = config(LoadBalancing::RoundRobin, 2);
    c.server.cores = 1;
    c.server.queue_timeout_us = 5 * kMinute;
    c.failover.shed_queue_depth = 2;
    const ClusterResult r = runCluster(t, PolicyKind::GreedyDual, c);

    EXPECT_GT(r.shed_requests, 0);
    // Shedding bounds the queues, so everything admitted is served
    // within the (generous) timeout instead of collapsing.
    for (const auto& s : r.servers) {
        EXPECT_EQ(s.dropped_timeout, 0) << "queue collapse not prevented";
        EXPECT_EQ(s.dropped_queue_full, 0);
    }
    expectConservation(r, t);
}

TEST(ClusterFailover, SameSeedReproducesRobustnessCounters)
{
    const Trace t = skewedFrequencyWorkload(20 * kMinute);
    ClusterConfig c = config();
    c.faults.crashes.push_back({0, 4 * kMinute, 2 * kMinute});
    c.faults.crashes.push_back({3, 11 * kMinute, 3 * kMinute});
    c.faults.spawn_failure_prob = 0.05;
    c.faults.straggler_prob = 0.05;
    c.failover.shed_queue_depth = 64;

    const ClusterResult a = runCluster(t, PolicyKind::GreedyDual, c);
    const ClusterResult b = runCluster(t, PolicyKind::GreedyDual, c);

    EXPECT_EQ(a.retries, b.retries);
    EXPECT_EQ(a.failovers, b.failovers);
    EXPECT_EQ(a.shed_requests, b.shed_requests);
    EXPECT_EQ(a.failed_requests, b.failed_requests);
    EXPECT_EQ(a.robustness(), b.robustness());
    EXPECT_EQ(a.warmStarts(), b.warmStarts());
    EXPECT_EQ(a.coldStarts(), b.coldStarts());
    ASSERT_EQ(a.servers.size(), b.servers.size());
    for (std::size_t s = 0; s < a.servers.size(); ++s) {
        EXPECT_EQ(a.servers[s].latencies_sec, b.servers[s].latencies_sec)
            << "server " << s;
    }
}

TEST(ClusterFailover, TtlVersusGreedyDualBothSurviveCrashes)
{
    const Trace t = skewedFrequencyWorkload(20 * kMinute);
    ClusterConfig c = config();
    c.faults.crashes.push_back({1, 5 * kMinute, 5 * kMinute});
    for (PolicyKind kind : {PolicyKind::Ttl, PolicyKind::GreedyDual}) {
        const ClusterResult r = runCluster(t, kind, c);
        expectConservation(r, t);
        EXPECT_EQ(r.robustness().crashes, 1);
    }
}

// --- Restart-boundary edges ----------------------------------------------

TEST(ClusterFailover, CrashExactlyAtTheRestartBoundary)
{
    // The second crash lands on the precise instant the first restart
    // completes: the server must come up, immediately go down again,
    // and both windows must be charged — with no invocation lost.
    const Trace t = skewedFrequencyWorkload(30 * kMinute);
    ClusterConfig c = config();
    c.faults.crashes.push_back({1, 5 * kMinute, 5 * kMinute});
    c.faults.crashes.push_back({1, 10 * kMinute, 5 * kMinute});
    const ClusterResult r = runCluster(t, PolicyKind::GreedyDual, c);

    EXPECT_EQ(r.robustness().crashes, 2);
    EXPECT_EQ(r.robustness().restarts, 2);
    // The two abutting windows stack into 10 minutes of downtime.
    EXPECT_EQ(r.unavailabilityUs(), 10 * kMinute);
    expectConservation(r, t);
}

TEST(ClusterFailover, BackToBackCrashWindowsOnDistinctServers)
{
    // Server 1's outage hands its traffic to server 2 — which itself
    // dies the moment server 1 comes back. Failover must chase the
    // moving target without double-counting or losing requests.
    const Trace t = skewedFrequencyWorkload(30 * kMinute);
    ClusterConfig c = config();
    c.faults.crashes.push_back({1, 5 * kMinute, 5 * kMinute});
    c.faults.crashes.push_back({2, 10 * kMinute, 5 * kMinute});
    const ClusterResult r = runCluster(t, PolicyKind::GreedyDual, c);

    EXPECT_EQ(r.robustness().crashes, 2);
    EXPECT_EQ(r.robustness().restarts, 2);
    EXPECT_EQ(r.unavailabilityUs(), 10 * kMinute);
    EXPECT_GT(r.failovers, 0);
    expectConservation(r, t);
}

TEST(ClusterFailover, RepeatedCrashesOfOneServerConserveRequests)
{
    // A crash-looping server: four short windows in one run. Every
    // window must recover cleanly (restart counters in lockstep) and
    // the fleet-wide ledger must still balance.
    const Trace t = skewedFrequencyWorkload(30 * kMinute);
    ClusterConfig c = config();
    for (int i = 0; i < 4; ++i)
        c.faults.crashes.push_back(
            {0, (4 + 6 * i) * kMinute, 2 * kMinute});
    const ClusterResult r = runCluster(t, PolicyKind::GreedyDual, c);

    EXPECT_EQ(r.robustness().crashes, 4);
    EXPECT_EQ(r.robustness().restarts, 4);
    EXPECT_EQ(r.unavailabilityUs(), 4 * 2 * kMinute);
    expectConservation(r, t);
}

TEST(ClusterFailover, HalfOpenProbeFailsAtCrashRestartBoundary)
{
    // A spawn-failure storm on a lone server cycles its breaker:
    // open -> (cool-down) -> half-open -> failed probe -> open again.
    // A crash window is placed so its restart boundary lands exactly on
    // an arrival timestamp, exercising the same-timestamp FIFO path:
    // the arrival delivers first (server still down, so it retries),
    // then the restart, and the later retry is the half-open probe that
    // fails at a settle point. The breaker must keep its transitions in
    // lockstep (closes <= opens <= closes + 1) under the auditor.
    Trace t("storm");
    t.addFunction(makeFunction(0, "f", 100, fromSeconds(1),
                               fromSeconds(1)));
    for (int i = 0; i <= 60; ++i)
        t.addInvocation(0, i * kSecond);  // one lands exactly at 30 s
    ClusterConfig c = config(LoadBalancing::RoundRobin, 1);
    c.faults.spawn_failure_prob = 1.0;  // every probe fails
    c.faults.crashes.push_back({0, 20 * kSecond, 10 * kSecond});
    c.failover.breaker.failure_threshold = 3;
    c.failover.breaker.open_duration_us = 5 * kSecond;
    Auditor audit;
    c.server.audit = &audit;
    const ClusterResult r = runCluster(t, PolicyKind::GreedyDual, c);

    EXPECT_EQ(r.robustness().crashes, 1);
    EXPECT_EQ(r.robustness().restarts, 1);
    // The breaker opened, probed while half-open, and the failing
    // probes re-opened it — repeatedly, since the storm never ends.
    EXPECT_GE(r.breaker_opens, 2);
    EXPECT_GE(r.breaker_probes, 1);
    EXPECT_LE(r.breaker_closes, r.breaker_opens);
    // Nothing ever spawns, so nothing is served...
    EXPECT_EQ(r.warmStarts() + r.coldStarts(), 0);
    // ...yet every request still resolves exactly once.
    expectConservation(r, t);
    EXPECT_EQ(audit.violationCount(), 0) << audit.report();
}

TEST(ClusterFailover, ConfigValidationRejectsBadValues)
{
    const Trace t = skewedFrequencyWorkload(kMinute);
    {
        ClusterConfig c = config();
        c.num_servers = 0;
        EXPECT_THROW(runCluster(t, PolicyKind::Ttl, c),
                     std::invalid_argument);
    }
    {
        ClusterConfig c = config();
        c.faults.crashes.push_back({9, kMinute, 0});  // only 4 servers
        EXPECT_THROW(runCluster(t, PolicyKind::Ttl, c),
                     std::invalid_argument);
    }
    {
        ClusterConfig c = config();
        c.faults.spawn_failure_prob = 2.0;
        EXPECT_THROW(runCluster(t, PolicyKind::Ttl, c),
                     std::invalid_argument);
    }
    {
        ClusterConfig c = config();
        c.failover.max_retries = -1;
        EXPECT_THROW(runCluster(t, PolicyKind::Ttl, c),
                     std::invalid_argument);
    }
    {
        ClusterConfig c = config();
        c.failover.base_backoff_us = 0;
        EXPECT_THROW(runCluster(t, PolicyKind::Ttl, c),
                     std::invalid_argument);
    }
    {
        ClusterConfig c = config();
        c.server.cores = 0;
        EXPECT_THROW(runCluster(t, PolicyKind::Ttl, c),
                     std::invalid_argument);
    }
    {
        ClusterConfig c = config();
        c.server.queue_capacity = 0;
        EXPECT_THROW(runCluster(t, PolicyKind::Ttl, c),
                     std::invalid_argument);
    }
    {
        ClusterConfig c = config();
        c.server.queue_timeout_us = 0;
        EXPECT_THROW(runCluster(t, PolicyKind::Ttl, c),
                     std::invalid_argument);
    }
    {
        // A shed mark deeper than the queue could never trigger.
        ClusterConfig c = config();
        c.failover.shed_queue_depth = c.server.queue_capacity + 1;
        EXPECT_THROW(runCluster(t, PolicyKind::Ttl, c),
                     std::invalid_argument);
    }
    {
        ClusterConfig c = config();
        c.failover.backoff_jitter_frac = 1.5;
        EXPECT_THROW(runCluster(t, PolicyKind::Ttl, c),
                     std::invalid_argument);
    }
    {
        ClusterConfig c = config();
        c.failover.retry_budget.ratio = -0.1;
        EXPECT_THROW(runCluster(t, PolicyKind::Ttl, c),
                     std::invalid_argument);
    }
    {
        ClusterConfig c = config();
        c.failover.breaker.failure_threshold = 3;
        c.failover.breaker.open_duration_us = 0;
        EXPECT_THROW(runCluster(t, PolicyKind::Ttl, c),
                     std::invalid_argument);
    }
    {
        ClusterConfig c = config();
        c.server.overload.admission.enabled = true;
        c.server.overload.admission.target_delay_us = 0;
        EXPECT_THROW(runCluster(t, PolicyKind::Ttl, c),
                     std::invalid_argument);
    }
    {
        ClusterConfig c = config();
        c.server.overload.brownout.enabled = true;
        c.server.overload.brownout.min_duration_us = -1;
        EXPECT_THROW(runCluster(t, PolicyKind::Ttl, c),
                     std::invalid_argument);
    }
}

}  // namespace
}  // namespace faascache

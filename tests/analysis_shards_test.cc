#include "analysis/shards.h"

#include <gtest/gtest.h>

#include "analysis/reuse_distance.h"
#include "trace/azure_model.h"

namespace faascache {
namespace {

Trace
population()
{
    AzureModelConfig config;
    config.seed = 21;
    config.num_functions = 250;
    config.duration_us = kHour;
    config.iat_median_sec = 30.0;
    return generateAzureTrace(config);
}

TEST(Shards, FullRateEqualsExactAnalysis)
{
    const Trace t = population();
    const ShardsResult shards = shardsSample(t, 1.0, 0);
    EXPECT_EQ(shards.sampled_invocations, t.invocations().size());
    EXPECT_EQ(shards.sampled_functions, t.functions().size());
    EXPECT_EQ(shards.scaled_distances, computeReuseDistances(t));
}

TEST(Shards, SampleSizeRoughlyProportional)
{
    const Trace t = population();
    const ShardsResult shards = shardsSample(t, 0.25, 7);
    const double frac = static_cast<double>(shards.sampled_functions) /
        static_cast<double>(t.functions().size());
    EXPECT_NEAR(frac, 0.25, 0.12);
    EXPECT_LT(shards.sampled_invocations, t.invocations().size());
}

TEST(Shards, DeterministicInSeed)
{
    const Trace t = population();
    const ShardsResult a = shardsSample(t, 0.3, 5);
    const ShardsResult b = shardsSample(t, 0.3, 5);
    EXPECT_EQ(a.sampled_invocations, b.sampled_invocations);
    EXPECT_EQ(a.scaled_distances, b.scaled_distances);
}

TEST(Shards, SeedChangesSample)
{
    const Trace t = population();
    const ShardsResult a = shardsSample(t, 0.3, 5);
    const ShardsResult b = shardsSample(t, 0.3, 6);
    EXPECT_NE(a.sampled_invocations, b.sampled_invocations);
}

TEST(Shards, DistancesAreScaledUp)
{
    const Trace t = population();
    const double rate = 0.5;
    const ShardsResult shards = shardsSample(t, rate, 3);
    // Every finite scaled distance must be an inflated version of a
    // plausible raw distance: non-negative and finite.
    for (double d : shards.scaled_distances) {
        if (isFiniteReuseDistance(d)) {
            EXPECT_GE(d, 0.0);
        }
    }
    EXPECT_DOUBLE_EQ(shards.sample_rate, rate);
}

TEST(Shards, ApproximatesExactHitRatioCurve)
{
    const Trace t = population();
    const HitRatioCurve exact =
        HitRatioCurve::fromReuseDistances(computeReuseDistances(t));
    const HitRatioCurve approx = curveFromShards(shardsSample(t, 0.4, 11));

    // Compare at several sizes; SHARDS error should be modest.
    for (MemMb size : {500.0, 2'000.0, 8'000.0, 32'000.0}) {
        EXPECT_NEAR(approx.hitRatio(size), exact.hitRatio(size), 0.12)
            << "at size " << size;
    }
}

TEST(Shards, CurveWeightsReflectRate)
{
    const Trace t = population();
    const ShardsResult shards = shardsSample(t, 0.5, 2);
    const HitRatioCurve curve = curveFromShards(shards);
    EXPECT_NEAR(curve.totalWeight(),
                static_cast<double>(shards.sampled_invocations) / 0.5,
                1e-6);
}

}  // namespace
}  // namespace faascache

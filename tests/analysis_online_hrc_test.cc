#include "analysis/online_hrc.h"

#include <gtest/gtest.h>

#include "analysis/reuse_distance.h"
#include "analysis/shards.h"
#include "trace/azure_model.h"

namespace faascache {
namespace {

Trace
workload()
{
    AzureModelConfig config;
    config.seed = 33;
    config.num_functions = 200;
    config.duration_us = 40 * kMinute;
    config.iat_median_sec = 30.0;
    return generateAzureTrace(config);
}

void
feed(OnlineReuseAnalyzer& analyzer, const Trace& trace)
{
    for (const auto& inv : trace.invocations())
        analyzer.observe(inv.function, trace.function(inv.function).mem_mb);
}

TEST(OnlineHrc, FullRateMatchesExactReuseDistances)
{
    const Trace t = workload();
    OnlineReuseAnalyzer analyzer(1.0, 0);
    feed(analyzer, t);
    const auto exact = computeReuseDistances(t);
    EXPECT_EQ(analyzer.scaledDistances(), exact);
    EXPECT_EQ(analyzer.observedCount(), t.invocations().size());
    EXPECT_EQ(analyzer.sampledCount(), t.invocations().size());
}

TEST(OnlineHrc, SampledMatchesOfflineShards)
{
    // Same rate, same salt, same hash: the streaming analyzer must
    // produce exactly the offline SHARDS distances.
    const Trace t = workload();
    const double rate = 0.3;
    const std::uint64_t seed = 9;
    OnlineReuseAnalyzer analyzer(rate, seed);
    feed(analyzer, t);
    const ShardsResult offline = shardsSample(t, rate, seed);
    EXPECT_EQ(analyzer.scaledDistances(), offline.scaled_distances);
    EXPECT_EQ(analyzer.sampledCount(), offline.sampled_invocations);
}

TEST(OnlineHrc, CurveApproximatesExact)
{
    const Trace t = workload();
    OnlineReuseAnalyzer analyzer(0.4, 7);
    feed(analyzer, t);
    const HitRatioCurve exact =
        HitRatioCurve::fromReuseDistances(computeReuseDistances(t));
    const HitRatioCurve online = analyzer.curve();
    for (MemMb size : {500.0, 2'000.0, 8'000.0}) {
        EXPECT_NEAR(online.hitRatio(size), exact.hitRatio(size), 0.15)
            << "at " << size;
    }
}

TEST(OnlineHrc, SnapshotsAreIncremental)
{
    const Trace t = workload();
    OnlineReuseAnalyzer analyzer(1.0, 0);
    const auto& invocations = t.invocations();
    const std::size_t half = invocations.size() / 2;
    for (std::size_t i = 0; i < half; ++i) {
        analyzer.observe(invocations[i].function,
                         t.function(invocations[i].function).mem_mb);
    }
    const HitRatioCurve mid = analyzer.curve();
    EXPECT_FALSE(mid.empty());
    for (std::size_t i = half; i < invocations.size(); ++i) {
        analyzer.observe(invocations[i].function,
                         t.function(invocations[i].function).mem_mb);
    }
    const HitRatioCurve full = analyzer.curve();
    EXPECT_GT(full.totalWeight(), mid.totalWeight());
}

TEST(OnlineHrc, GrowsPastInitialCapacity)
{
    // More than 1024 sampled accesses forces at least one tree regrow.
    OnlineReuseAnalyzer analyzer(1.0, 0);
    for (int i = 0; i < 5'000; ++i)
        analyzer.observe(static_cast<FunctionId>(i % 7), 100.0);
    EXPECT_EQ(analyzer.sampledCount(), 5'000u);
    // All re-accesses alternate among 7 functions of 100 MB: every
    // finite distance is 600 MB.
    for (std::size_t i = 7; i < analyzer.scaledDistances().size(); ++i)
        EXPECT_DOUBLE_EQ(analyzer.scaledDistances()[i], 600.0);
}

TEST(OnlineHrc, ResetClearsState)
{
    OnlineReuseAnalyzer analyzer(1.0, 0);
    analyzer.observe(1, 100.0);
    analyzer.observe(1, 100.0);
    analyzer.reset();
    EXPECT_EQ(analyzer.observedCount(), 0u);
    EXPECT_TRUE(analyzer.scaledDistances().empty());
    analyzer.observe(1, 100.0);
    EXPECT_EQ(analyzer.scaledDistances().size(), 1u);
    EXPECT_EQ(analyzer.scaledDistances()[0], kInfiniteReuseDistance);
}

}  // namespace
}  // namespace faascache

// Hardening battery for the `.ftrace` on-disk format (DESIGN.md §4h):
// write/read round-trips, named-field rejection of every class of
// header/table/chunk corruption, and a seeded fuzz sweep reusing the
// checkpoint-journal mutator so thousands of corrupted files either
// read back the original stream exactly or are refused with an
// "ftrace: <path>: <field>: ..." error — never a crash, never a
// silently different trace.
#include "trace/ftrace_format.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "trace/function_spec.h"
#include "trace/invocation_source.h"
#include "trace/patterns.h"
#include "trace/trace.h"
#include "util/checkpoint_journal.h"
#include "util/journal_mutator.h"

namespace faascache {
namespace {

class TempFtrace
{
  public:
    explicit TempFtrace(const std::string& tag)
        : path_(std::string(::testing::TempDir()) + "faascache_" + tag +
                ".ftrace")
    {
        std::remove(path_.c_str());
    }
    ~TempFtrace() { std::remove(path_.c_str()); }

    const std::string& path() const { return path_; }

  private:
    std::string path_;
};

Trace
workload()
{
    std::vector<FunctionSpec> specs;
    std::vector<TimeUs> iats;
    for (FunctionId id = 0; id < 10; ++id) {
        specs.push_back(makeFunction(
            id, "fn-" + std::to_string(id),
            96.0 + 16.0 * static_cast<double>(id), fromMillis(60 + id),
            fromMillis(420 + 10 * id)));
        iats.push_back(fromSeconds(1 + id % 4));
    }
    return makePoissonTrace(specs, iats, 3 * kMinute, 0xF7ACEu,
                            "ftrace-workload");
}

std::string
readFile(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

void
writeFile(const std::string& path, const std::string& bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size()));
}

/** Compile `trace` to `path`, small chunks so multi-chunk paths run. */
void
compile(const Trace& trace, const std::string& path,
        std::uint32_t chunk_capacity = 64)
{
    TraceSource source(trace);
    writeFtraceFile(path, source, chunk_capacity);
}

void
expectStreamsEqual(FtraceSource& got, const Trace& want)
{
    EXPECT_EQ(got.name(), want.name());
    ASSERT_EQ(got.functions().size(), want.functions().size());
    Invocation inv;
    std::size_t i = 0;
    while (got.next(inv)) {
        ASSERT_LT(i, want.invocations().size());
        EXPECT_EQ(inv, want.invocations()[i]) << "invocation " << i;
        ++i;
    }
    EXPECT_EQ(i, want.invocations().size());
}

TEST(FtraceRoundTrip, MultiChunkStreamIsIdentical)
{
    const Trace trace = workload();
    TempFtrace file("roundtrip");
    compile(trace, file.path());

    FtraceSource source(file.path());
    EXPECT_GT(source.numChunks(), 1u) << "want the multi-chunk path";
    EXPECT_TRUE(source.countHint().exact);
    EXPECT_EQ(source.countHint().count, trace.invocations().size());
    expectStreamsEqual(source, trace);

    // Catalog round-trips bit-exactly (doubles stored as raw bits).
    for (std::size_t f = 0; f < trace.functions().size(); ++f) {
        EXPECT_EQ(source.functions()[f].name, trace.functions()[f].name);
        EXPECT_EQ(source.functions()[f].mem_mb,
                  trace.functions()[f].mem_mb);
        EXPECT_EQ(source.functions()[f].warm_us,
                  trace.functions()[f].warm_us);
    }

    // reset() restarts the stream from chunk 0.
    source.reset();
    expectStreamsEqual(source, trace);
}

// One mapping per path per process: sources and cursors on the same
// file share a single FtraceRegion, and every cursor streams the full
// trace independently (the sharded cluster fans one region out to all
// shards instead of re-opening the file per consumer).
TEST(FtraceRoundTrip, RegionIsSharedAndCursorsAreIndependent)
{
    const Trace trace = workload();
    TempFtrace file("region");
    compile(trace, file.path());

    std::shared_ptr<FtraceRegion> region = FtraceRegion::open(file.path());
    EXPECT_EQ(FtraceRegion::open(file.path()).get(), region.get())
        << "same path must reuse the live mapping";
    FtraceSource source(file.path());
    EXPECT_EQ(source.region().get(), region.get())
        << "FtraceSource must join the shared region too";

    // Interleaved cursors do not disturb each other: advance one past
    // a chunk boundary (triggering the release watermark scan), then
    // stream both to completion.
    std::unique_ptr<FtraceCursor> a = region->makeCursor();
    std::unique_ptr<FtraceCursor> b = region->makeCursor();
    Invocation inv;
    for (std::uint64_t i = 0; i < region->chunkCapacity() + 3; ++i) {
        ASSERT_TRUE(a->next(inv));
        EXPECT_EQ(inv, trace.invocations()[i]);
    }
    std::size_t got_b = 0;
    while (b->next(inv)) {
        ASSERT_LT(got_b, trace.invocations().size());
        EXPECT_EQ(inv, trace.invocations()[got_b]) << "cursor b @" << got_b;
        ++got_b;
    }
    EXPECT_EQ(got_b, trace.invocations().size());
    while (a->next(inv)) {
    }

    // reset() behind the release watermark re-faults pages correctly.
    b->reset();
    std::size_t again = 0;
    while (b->next(inv)) {
        ASSERT_LT(again, trace.invocations().size());
        EXPECT_EQ(inv, trace.invocations()[again]) << "post-reset @" << again;
        ++again;
    }
    EXPECT_EQ(again, trace.invocations().size());

    // After heavy cursor churn a re-open still streams the same bytes.
    a.reset();
    b.reset();
    region.reset();
    {
        FtraceSource reopened(file.path());
        expectStreamsEqual(reopened, trace);
    }
}

TEST(FtraceWriter, RejectsContractViolations)
{
    TempFtrace file("writer-contract");
    std::vector<FunctionSpec> specs = {
        makeFunction(0, "a", 128.0, fromMillis(50), fromMillis(200))};
    FtraceWriter writer(file.path(), "w", specs, 16);
    writer.append(Invocation{0, 100});
    // Out-of-order arrival.
    EXPECT_THROW(writer.append(Invocation{0, 50}), std::runtime_error);
    // Unknown function id.
    EXPECT_THROW(writer.append(Invocation{7, 200}), std::runtime_error);
    writer.finish();
    writer.finish();  // idempotent
    EXPECT_THROW(writer.append(Invocation{0, 300}), std::runtime_error);
}

TEST(FtraceValidation, UnfinishedFileIsRejected)
{
    TempFtrace file("unfinished");
    std::vector<FunctionSpec> specs = {
        makeFunction(0, "a", 128.0, fromMillis(50), fromMillis(200))};
    {
        FtraceWriter writer(file.path(), "w", specs, 16);
        writer.append(Invocation{0, 100});
        // No finish(): provisional header, zeroed checksum.
    }
    try {
        FtraceSource source(file.path());
        FAIL() << "unfinished file accepted";
    } catch (const std::runtime_error& error) {
        EXPECT_NE(std::string(error.what()).find("header_checksum"),
                  std::string::npos)
            << error.what();
    }
}

/** Expect opening (or fully draining) `path` to throw an error naming
 *  `field`. */
void
expectRejectedNaming(const std::string& path, const std::string& field)
{
    try {
        FtraceSource source(path);
        Invocation inv;
        while (source.next(inv)) {
        }
        FAIL() << "corrupted file accepted (wanted '" << field << "')";
    } catch (const std::runtime_error& error) {
        const std::string what = error.what();
        EXPECT_NE(what.find("ftrace: "), std::string::npos) << what;
        EXPECT_NE(what.find(field), std::string::npos)
            << "error '" << what << "' does not name field '" << field
            << "'";
    }
}

TEST(FtraceValidation, NamedFieldRejections)
{
    const Trace trace = workload();
    TempFtrace file("corrupt");
    compile(trace, file.path());
    const std::string good = readFile(file.path());

    struct Case
    {
        const char* field;
        std::size_t offset;
        unsigned char value;
    };
    const std::vector<Case> cases = {
        {"magic", 0, 'X'},
        {"endianness", 4, 0x43},  // byte-swapped marker
        {"version", 8, 0x7f},
        {"header_checksum", 56, 0x00},
    };
    for (const Case& c : cases) {
        std::string bad = good;
        ASSERT_LT(c.offset, bad.size());
        if (static_cast<unsigned char>(bad[c.offset]) == c.value)
            ++const_cast<Case&>(c).value;
        bad[c.offset] = static_cast<char>(c.value);
        writeFile(file.path(), bad);
        expectRejectedNaming(file.path(), c.field);
    }

    // chunk_capacity above the reader's stride-overflow guard, with the
    // header checksum re-patched so the field's own validation (not the
    // checksum) is what rejects the file.
    {
        std::string bad = good;
        const std::uint32_t huge = ftrace::kMaxChunkCapacity + 1;
        std::memcpy(&bad[12], &huge, sizeof huge);
        const std::uint64_t checksum =
            fnv1a64(std::string_view(bad.data(), 56));
        std::memcpy(&bad[56], &checksum, sizeof checksum);
        writeFile(file.path(), bad);
        expectRejectedNaming(file.path(), "chunk_capacity");
    }

    // Truncation below the header size names the header.
    writeFile(file.path(), good.substr(0, 32));
    expectRejectedNaming(file.path(), "header");

    // Truncating the last chunk names the file size check.
    writeFile(file.path(), good.substr(0, good.size() - 9));
    expectRejectedNaming(file.path(), "file");

    // Flipping one payload byte in the final chunk trips that chunk's
    // checksum (lazily, on first touch of the chunk).
    std::string bad = good;
    bad[good.size() - 20] = static_cast<char>(bad[good.size() - 20] ^ 0x10);
    writeFile(file.path(), bad);
    expectRejectedNaming(file.path(), "chunk");

    // Restore and confirm the baseline still reads (the harness above
    // really was testing the mutation, not a broken fixture).
    writeFile(file.path(), good);
    FtraceSource source(file.path());
    expectStreamsEqual(source, trace);
}

// Seeded fuzz: mutate the compiled bytes with the checkpoint-journal
// mutator (bit flips, truncation, duplicated/deleted/swapped spans,
// header corruption, appended garbage) and require the contract: the
// reader either yields the exact original stream or throws a named
// ftrace error. Any crash or silent divergence fails the test.
TEST(FtraceFuzz, MutatedFilesNeverCrashOrSilentlyDiverge)
{
    const Trace trace = workload();
    TempFtrace file("fuzz");
    compile(trace, file.path());
    const std::string good = readFile(file.path());

    int accepted = 0, rejected = 0;
    for (std::uint64_t seed = 0; seed < 300; ++seed) {
        JournalMutation mutation;
        const std::string mutated =
            mutateJournal(good, seed, &mutation);
        writeFile(file.path(), mutated);
        try {
            FtraceSource source(file.path());
            Invocation inv;
            std::size_t i = 0;
            bool diverged =
                source.name() != trace.name() ||
                source.functions().size() != trace.functions().size();
            while (!diverged && source.next(inv)) {
                if (i >= trace.invocations().size() ||
                    !(inv == trace.invocations()[i])) {
                    diverged = true;
                    break;
                }
                ++i;
            }
            if (!diverged)
                diverged = i != trace.invocations().size();
            EXPECT_FALSE(diverged)
                << "seed " << seed << " (" << mutation.format()
                << "): mutated file read back a different stream";
            ++accepted;
        } catch (const std::runtime_error& error) {
            EXPECT_NE(std::string(error.what()).find("ftrace: "),
                      std::string::npos)
                << "seed " << seed << " (" << mutation.format()
                << "): unnamed error: " << error.what();
            ++rejected;
        }
        // Any other exception type (or a crash) escapes and fails.
    }
    // The mutator must actually have produced rejectable corruption.
    EXPECT_GT(rejected, 0);
    // Identity mutations (or mutations confined to slack bytes) may
    // legitimately still read back clean; both tallies just document
    // the split.
    (void)accepted;
}

}  // namespace
}  // namespace faascache

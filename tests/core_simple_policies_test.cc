// Tests for the single-characteristic Greedy-Dual specializations
// (paper §4.2): LRU (recency), FREQ/LFU (frequency), SIZE (1/size).
#include <gtest/gtest.h>

#include "core/container_pool.h"
#include "core/lfu_policy.h"
#include "core/lru_policy.h"
#include "core/size_policy.h"

namespace faascache {
namespace {

FunctionSpec
fn(FunctionId id, MemMb mem = 100)
{
    return makeFunction(id, "fn" + std::to_string(id), mem, fromMillis(100),
                        fromMillis(100));
}

Container&
coldUse(ContainerPool& pool, KeepAlivePolicy& policy,
        const FunctionSpec& spec, TimeUs now)
{
    policy.onInvocationArrival(spec, now);
    Container& c = pool.add(spec, now);
    c.startInvocation(now, now + spec.cold_us);
    policy.onColdStart(c, spec, now);
    c.finishInvocation();
    return c;
}

void
warmUse(ContainerPool&, KeepAlivePolicy& policy, Container& c,
        const FunctionSpec& spec, TimeUs now)
{
    policy.onInvocationArrival(spec, now);
    c.startInvocation(now, now + spec.warm_us);
    policy.onWarmStart(c, spec, now);
    c.finishInvocation();
}

TEST(LruPolicy, EvictsLeastRecentlyUsed)
{
    ContainerPool pool(10'000);
    LruPolicy policy;
    Container& a = coldUse(pool, policy, fn(0), 0);
    Container& b = coldUse(pool, policy, fn(1), kSecond);
    // Touch a again: b becomes the LRU.
    warmUse(pool, policy, a, fn(0), 2 * kSecond);

    const auto victims = policy.selectVictims(pool, 50, 3 * kSecond);
    ASSERT_EQ(victims.size(), 1u);
    EXPECT_EQ(victims[0], b.id());
}

TEST(LruPolicy, ResourceConservingNoExpiry)
{
    ContainerPool pool(1000);
    LruPolicy policy;
    coldUse(pool, policy, fn(0), 0);
    EXPECT_TRUE(policy.expiredContainers(pool, 365 * 24 * kHour).empty());
}

TEST(LruPolicy, SkipsBusyContainers)
{
    ContainerPool pool(10'000);
    LruPolicy policy;
    policy.onInvocationArrival(fn(0), 0);
    Container& busy = pool.add(fn(0), 0);
    busy.startInvocation(0, kHour);
    policy.onColdStart(busy, fn(0), 0);
    Container& idle = coldUse(pool, policy, fn(1), kSecond);

    const auto victims = policy.selectVictims(pool, 50, 2 * kSecond);
    ASSERT_EQ(victims.size(), 1u);
    EXPECT_EQ(victims[0], idle.id());
}

TEST(LfuPolicy, EvictsLeastFrequentlyInvoked)
{
    ContainerPool pool(10'000);
    LfuPolicy policy;
    Container& popular = coldUse(pool, policy, fn(0), 0);
    Container& unpopular = coldUse(pool, policy, fn(1), kSecond);
    warmUse(pool, policy, popular, fn(0), 2 * kSecond);
    warmUse(pool, policy, popular, fn(0), 3 * kSecond);

    const auto victims = policy.selectVictims(pool, 50, 4 * kSecond);
    ASSERT_EQ(victims.size(), 1u);
    EXPECT_EQ(victims[0], unpopular.id());
}

TEST(LfuPolicy, TieBreaksByRecency)
{
    ContainerPool pool(10'000);
    LfuPolicy policy;
    Container& older = coldUse(pool, policy, fn(0), 0);
    coldUse(pool, policy, fn(1), kSecond);  // same frequency (1)

    const auto victims = policy.selectVictims(pool, 50, 2 * kSecond);
    ASSERT_EQ(victims.size(), 1u);
    EXPECT_EQ(victims[0], older.id());
}

TEST(LfuPolicy, FrequencyResetMakesFunctionEvictable)
{
    ContainerPool pool(10'000);
    LfuPolicy policy;
    Container& a = coldUse(pool, policy, fn(0), 0);
    warmUse(pool, policy, a, fn(0), kSecond);
    warmUse(pool, policy, a, fn(0), 2 * kSecond);
    // Evicting the last container of fn 0 resets its frequency.
    policy.onEviction(a, /*last_of_function=*/true, 3 * kSecond);
    pool.remove(a.id());

    coldUse(pool, policy, fn(0), 4 * kSecond);      // freq back to 1
    Container& b = coldUse(pool, policy, fn(1), 5 * kSecond);
    warmUse(pool, policy, b, fn(1), 6 * kSecond);   // freq 2

    const auto victims = policy.selectVictims(pool, 50, 7 * kSecond);
    ASSERT_EQ(victims.size(), 1u);
    EXPECT_EQ(pool.get(victims[0])->function(), 0u);
}

TEST(SizePolicy, EvictsLargestFirst)
{
    ContainerPool pool(10'000);
    SizePolicy policy;
    coldUse(pool, policy, fn(0, 64), 0);
    Container& big = coldUse(pool, policy, fn(1, 512), kSecond);
    coldUse(pool, policy, fn(2, 128), 2 * kSecond);

    const auto victims = policy.selectVictims(pool, 50, 3 * kSecond);
    ASSERT_EQ(victims.size(), 1u);
    EXPECT_EQ(victims[0], big.id());
}

TEST(SizePolicy, EqualSizesFallBackToLru)
{
    ContainerPool pool(10'000);
    SizePolicy policy;
    Container& older = coldUse(pool, policy, fn(0, 100), 0);
    coldUse(pool, policy, fn(1, 100), kSecond);

    const auto victims = policy.selectVictims(pool, 50, 2 * kSecond);
    ASSERT_EQ(victims.size(), 1u);
    EXPECT_EQ(victims[0], older.id());
}

TEST(SimplePolicies, Names)
{
    EXPECT_EQ(LruPolicy().name(), "LRU");
    EXPECT_EQ(LfuPolicy().name(), "FREQ");
    EXPECT_EQ(SizePolicy().name(), "SIZE");
}

}  // namespace
}  // namespace faascache

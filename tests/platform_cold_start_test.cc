#include "platform/cold_start_model.h"

#include <gtest/gtest.h>

#include "platform/function_bench.h"

namespace faascache {
namespace {

TEST(ColdStartModel, StagesSumToColdTime)
{
    for (const auto& spec : functionBenchCatalog()) {
        const ColdStartBreakdown b = coldStartBreakdown(spec);
        EXPECT_EQ(b.overheadUs(), spec.initTime()) << spec.name;
        EXPECT_EQ(b.totalUs(), spec.cold_us) << spec.name;
        EXPECT_EQ(b.execution_us, spec.warm_us) << spec.name;
    }
}

TEST(ColdStartModel, HeavyInitGetsExplicitComponent)
{
    // The CNN app (4.5 s init) has room for model downloads beyond the
    // fixed platform stages (~2.75 s).
    const ColdStartBreakdown b =
        coldStartBreakdown(functionBenchSpec(FunctionBenchApp::MlInference));
    EXPECT_GT(b.explicit_init_us, 0);
    const ColdStartModelConfig config;
    EXPECT_EQ(b.docker_startup_us, config.docker_startup_us);
    EXPECT_EQ(b.ow_runtime_init_us, config.ow_runtime_init_us);
}

TEST(ColdStartModel, LightweightInitScalesPlatformStages)
{
    // Disk-bench init (1.8 s) is below the fixed stages: everything is
    // scaled down and explicit init is zero.
    const ColdStartBreakdown b =
        coldStartBreakdown(functionBenchSpec(FunctionBenchApp::DiskBench));
    EXPECT_EQ(b.explicit_init_us, 0);
    const ColdStartModelConfig config;
    EXPECT_LT(b.docker_startup_us, config.docker_startup_us);
    EXPECT_EQ(b.overheadUs(),
              functionBenchSpec(FunctionBenchApp::DiskBench).initTime());
}

TEST(ColdStartModel, ZeroInitFunction)
{
    const FunctionSpec spec =
        makeFunction(0, "no-init", 64, fromSeconds(1), 0);
    const ColdStartBreakdown b = coldStartBreakdown(spec);
    EXPECT_EQ(b.overheadUs(), 0);
    EXPECT_EQ(b.totalUs(), spec.warm_us);
}

TEST(ColdStartModel, CustomConfigRespected)
{
    ColdStartModelConfig config;
    config.docker_startup_us = fromSeconds(0.1);
    config.ow_runtime_init_us = fromSeconds(0.2);
    config.language_init_us = fromSeconds(0.1);
    config.pool_check_us = fromSeconds(0.01);
    const FunctionSpec spec =
        makeFunction(0, "fn", 64, fromSeconds(1), fromSeconds(2));
    const ColdStartBreakdown b = coldStartBreakdown(spec, config);
    EXPECT_EQ(b.docker_startup_us, fromSeconds(0.1));
    EXPECT_EQ(b.explicit_init_us,
              fromSeconds(2) - fromSeconds(0.01) - fromSeconds(0.1) -
                  fromSeconds(0.2) - fromSeconds(0.1));
}

}  // namespace
}  // namespace faascache

// The fixed-size worker pool under the sweep engine: result delivery
// through futures, input-order parallelMap, exception propagation, and
// heavy contention. The tsan CI job runs this suite to catch races.
#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

namespace faascache {
namespace {

TEST(ThreadPool, RunsSubmittedTask)
{
    ThreadPool pool(2);
    std::future<int> result = pool.submit([]() { return 41 + 1; });
    EXPECT_EQ(result.get(), 42);
}

TEST(ThreadPool, DefaultsToHardwareConcurrency)
{
    ThreadPool pool;
    EXPECT_EQ(pool.size(), ThreadPool::defaultConcurrency());
    EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, ZeroRequestsDefaultConcurrency)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.size(), ThreadPool::defaultConcurrency());
}

TEST(ThreadPool, ForwardsArguments)
{
    ThreadPool pool(1);
    std::future<std::string> result = pool.submit(
        [](const std::string& a, int b) { return a + std::to_string(b); },
        std::string("n="), 7);
    EXPECT_EQ(result.get(), "n=7");
}

TEST(ThreadPool, PropagatesExceptions)
{
    ThreadPool pool(2);
    std::future<void> result = pool.submit(
        []() { throw std::runtime_error("cell failed"); });
    EXPECT_THROW(result.get(), std::runtime_error);
}

TEST(ThreadPool, CompletesAllTasksUnderContention)
{
    ThreadPool pool(8);
    std::atomic<int> counter{0};
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 500; ++i)
        futures.push_back(pool.submit([&counter]() { ++counter; }));
    for (auto& future : futures)
        future.get();
    EXPECT_EQ(counter.load(), 500);
}

TEST(ThreadPool, DrainsPendingTasksOnDestruction)
{
    std::atomic<int> counter{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 100; ++i)
            pool.submit([&counter]() { ++counter; });
        // No explicit waits: the destructor must run every queued task.
    }
    EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ParallelMapPreservesInputOrder)
{
    ThreadPool pool(4);
    std::vector<int> items(200);
    std::iota(items.begin(), items.end(), 0);
    const std::vector<int> squares =
        parallelMap(pool, items, [](const int& v) { return v * v; });
    ASSERT_EQ(squares.size(), items.size());
    for (std::size_t i = 0; i < items.size(); ++i)
        EXPECT_EQ(squares[i], static_cast<int>(i * i));
}

TEST(ThreadPool, ParallelMapOnEmptyInput)
{
    ThreadPool pool(4);
    const std::vector<int> none;
    EXPECT_TRUE(parallelMap(pool, none, [](const int& v) { return v; })
                    .empty());
}

TEST(ThreadPool, ParallelMapRethrowsFirstFailure)
{
    ThreadPool pool(2);
    const std::vector<int> items = {1, 2, 3};
    EXPECT_THROW(parallelMap(pool, items,
                             [](const int& v) {
                                 if (v == 2)
                                     throw std::invalid_argument("boom");
                                 return v;
                             }),
                 std::invalid_argument);
}

}  // namespace
}  // namespace faascache

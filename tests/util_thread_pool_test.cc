// The fixed-size worker pool under the sweep engine: result delivery
// through futures, input-order parallelMap, exception propagation, and
// heavy contention. The tsan CI job runs this suite to catch races.
#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

namespace faascache {
namespace {

TEST(ThreadPool, RunsSubmittedTask)
{
    ThreadPool pool(2);
    std::future<int> result = pool.submit([]() { return 41 + 1; });
    EXPECT_EQ(result.get(), 42);
}

TEST(ThreadPool, DefaultsToHardwareConcurrency)
{
    ThreadPool pool;
    EXPECT_EQ(pool.size(), ThreadPool::defaultConcurrency());
    EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, ZeroRequestsDefaultConcurrency)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.size(), ThreadPool::defaultConcurrency());
}

TEST(ThreadPool, ForwardsArguments)
{
    ThreadPool pool(1);
    std::future<std::string> result = pool.submit(
        [](const std::string& a, int b) { return a + std::to_string(b); },
        std::string("n="), 7);
    EXPECT_EQ(result.get(), "n=7");
}

TEST(ThreadPool, PropagatesExceptions)
{
    ThreadPool pool(2);
    std::future<void> result = pool.submit(
        []() { throw std::runtime_error("cell failed"); });
    EXPECT_THROW(result.get(), std::runtime_error);
}

TEST(ThreadPool, CompletesAllTasksUnderContention)
{
    ThreadPool pool(8);
    std::atomic<int> counter{0};
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 500; ++i)
        futures.push_back(pool.submit([&counter]() { ++counter; }));
    for (auto& future : futures)
        future.get();
    EXPECT_EQ(counter.load(), 500);
}

TEST(ThreadPool, DrainsPendingTasksOnDestruction)
{
    std::atomic<int> counter{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 100; ++i)
            pool.submit([&counter]() { ++counter; });
        // No explicit waits: the destructor must run every queued task.
    }
    EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ParallelMapPreservesInputOrder)
{
    ThreadPool pool(4);
    std::vector<int> items(200);
    std::iota(items.begin(), items.end(), 0);
    const std::vector<int> squares =
        parallelMap(pool, items, [](const int& v) { return v * v; });
    ASSERT_EQ(squares.size(), items.size());
    for (std::size_t i = 0; i < items.size(); ++i)
        EXPECT_EQ(squares[i], static_cast<int>(i * i));
}

TEST(ThreadPool, ParallelMapOnEmptyInput)
{
    ThreadPool pool(4);
    const std::vector<int> none;
    EXPECT_TRUE(parallelMap(pool, none, [](const int& v) { return v; })
                    .empty());
}

TEST(ThreadPool, ParallelMapRethrowsFirstFailure)
{
    ThreadPool pool(2);
    const std::vector<int> items = {1, 2, 3};
    EXPECT_THROW(parallelMap(pool, items,
                             [](const int& v) {
                                 if (v == 2)
                                     throw std::invalid_argument("boom");
                                 return v;
                             }),
                 std::invalid_argument);
}

// --- Bounded-drain shutdown (the sweep engine's wedged-task escape) ------

/** A task that blocks until released, shared so a detached worker can
 *  outlive the test body safely. */
struct Wedge
{
    std::mutex mutex;
    std::condition_variable cv;
    bool released = false;
    bool started = false;

    void wait()
    {
        std::unique_lock<std::mutex> lock(mutex);
        started = true;
        cv.notify_all();
        cv.wait(lock, [this]() { return released; });
    }

    void waitUntilStarted()
    {
        std::unique_lock<std::mutex> lock(mutex);
        cv.wait(lock, [this]() { return started; });
    }

    void release()
    {
        std::lock_guard<std::mutex> lock(mutex);
        released = true;
        cv.notify_all();
    }
};

TEST(ThreadPoolShutdown, CleanShutdownReportsDrained)
{
    ThreadPool pool(2);
    std::atomic<int> counter{0};
    for (int i = 0; i < 50; ++i)
        pool.submit([&counter]() { ++counter; });
    const ThreadPool::ShutdownReport report = pool.shutdown();
    EXPECT_TRUE(report.drained);
    EXPECT_EQ(report.unjoined_workers, 0u);
    EXPECT_EQ(report.abandoned_tasks, 0u);
    EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolShutdown, SubmitAfterShutdownThrows)
{
    ThreadPool pool(1);
    pool.shutdown();
    EXPECT_THROW(pool.submit([]() {}), std::runtime_error);
}

TEST(ThreadPoolShutdown, WedgedWorkerIsDetachedAndReported)
{
    auto wedge = std::make_shared<Wedge>();
    ThreadPool pool(1);
    pool.submit([wedge]() { wedge->wait(); });
    wedge->waitUntilStarted();

    const ThreadPool::ShutdownReport report =
        pool.shutdown(std::chrono::milliseconds(50));
    EXPECT_FALSE(report.drained);
    EXPECT_EQ(report.unjoined_workers, 1u);
    // The detached worker keeps running; releasing it lets it finish
    // against the shared pool state (kept alive past the pool object).
    wedge->release();
}

TEST(ThreadPoolShutdown, AbandonedTasksGetBrokenPromises)
{
    auto wedge = std::make_shared<Wedge>();
    ThreadPool pool(1);
    pool.submit([wedge]() { wedge->wait(); });
    wedge->waitUntilStarted();
    // Queued behind the wedged task; it can never start.
    std::future<int> abandoned = pool.submit([]() { return 1; });

    const ThreadPool::ShutdownReport report =
        pool.shutdown(std::chrono::milliseconds(50));
    EXPECT_FALSE(report.drained);
    EXPECT_EQ(report.abandoned_tasks, 1u);
    try {
        abandoned.get();
        FAIL() << "expected broken_promise";
    } catch (const std::future_error& e) {
        EXPECT_EQ(e.code(), std::future_errc::broken_promise);
    }
    wedge->release();
}

TEST(ThreadPoolShutdown, RepeatedShutdownReturnsFirstReport)
{
    auto wedge = std::make_shared<Wedge>();
    ThreadPool pool(1);
    pool.submit([wedge]() { wedge->wait(); });
    wedge->waitUntilStarted();

    const ThreadPool::ShutdownReport first =
        pool.shutdown(std::chrono::milliseconds(50));
    EXPECT_FALSE(first.drained);
    wedge->release();
    // Idempotent: the second call reports the first call's outcome, it
    // does not re-drain.
    const ThreadPool::ShutdownReport second = pool.shutdown();
    EXPECT_EQ(second.drained, first.drained);
    EXPECT_EQ(second.unjoined_workers, first.unjoined_workers);
    EXPECT_EQ(second.abandoned_tasks, first.abandoned_tasks);
}

TEST(ThreadPoolShutdown, DrainTimeoutArmsTheDestructor)
{
    auto wedge = std::make_shared<Wedge>();
    {
        ThreadPool pool(1);
        pool.setDrainTimeout(std::chrono::milliseconds(50));
        pool.submit([wedge]() { wedge->wait(); });
        wedge->waitUntilStarted();
        // The destructor must come back (logging the diagnostics)
        // instead of blocking on the wedged worker forever.
    }
    wedge->release();
}

}  // namespace
}  // namespace faascache

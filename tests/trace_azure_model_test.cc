#include "trace/azure_model.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <utility>
#include <vector>

namespace faascache {
namespace {

AzureModelConfig
smallConfig()
{
    AzureModelConfig config;
    config.seed = 7;
    config.num_functions = 120;
    config.duration_us = 30 * kMinute;
    config.iat_median_sec = 30.0;
    return config;
}

TEST(AzureModel, Deterministic)
{
    const Trace a = generateAzureTrace(smallConfig());
    const Trace b = generateAzureTrace(smallConfig());
    ASSERT_EQ(a.invocations().size(), b.invocations().size());
    EXPECT_EQ(a.functions().size(), b.functions().size());
    for (std::size_t i = 0; i < a.invocations().size(); ++i)
        EXPECT_EQ(a.invocations()[i], b.invocations()[i]);
}

TEST(AzureModel, SeedChangesTrace)
{
    AzureModelConfig other = smallConfig();
    other.seed = 8;
    const Trace a = generateAzureTrace(smallConfig());
    const Trace b = generateAzureTrace(other);
    EXPECT_NE(a.invocations().size(), b.invocations().size());
}

TEST(AzureModel, TraceIsValidAndSorted)
{
    const Trace t = generateAzureTrace(smallConfig());
    EXPECT_TRUE(t.validate());
    EXPECT_TRUE(t.isSorted());
}

TEST(AzureModel, RespectsMemoryClamps)
{
    AzureModelConfig config = smallConfig();
    config.mem_min_mb = 64;
    config.mem_max_mb = 512;
    const Trace t = generateAzureTrace(config);
    for (const auto& fn : t.functions()) {
        EXPECT_GE(fn.mem_mb, 64.0);
        EXPECT_LE(fn.mem_mb, 512.0);
    }
}

TEST(AzureModel, InitRatioWithinClamp)
{
    AzureModelConfig config = smallConfig();
    const Trace t = generateAzureTrace(config);
    for (const auto& fn : t.functions()) {
        const double ratio = static_cast<double>(fn.initTime()) /
            static_cast<double>(fn.warm_us);
        // Microsecond truncation perturbs the ratio slightly.
        EXPECT_GE(ratio, config.init_ratio_min * 0.95);
        EXPECT_LE(ratio, config.init_ratio_max * 1.05);
    }
}

TEST(AzureModel, DropsSingleInvocationFunctions)
{
    const Trace t = generateAzureTrace(smallConfig());
    const auto counts = t.invocationCounts();
    for (std::size_t count : counts)
        EXPECT_GE(count, 2u);
}

TEST(AzureModel, KeepsSingletonsWhenConfigured)
{
    AzureModelConfig config = smallConfig();
    config.drop_single_invocation_functions = false;
    const Trace t = generateAzureTrace(config);
    EXPECT_EQ(t.functions().size(), config.num_functions);
}

TEST(AzureModel, MinuteBucketRule)
{
    // Multiple invocations of one function within a minute must be
    // evenly spaced; a single invocation lands at the bucket start.
    const Trace t = generateAzureTrace(smallConfig());
    // Group invocations per (function, minute).
    std::map<std::pair<FunctionId, TimeUs>, std::vector<TimeUs>> buckets;
    for (const auto& inv : t.invocations()) {
        buckets[{inv.function, inv.arrival_us / kMinute}].push_back(
            inv.arrival_us);
    }
    for (const auto& [key, times] : buckets) {
        const TimeUs start = key.second * kMinute;
        if (times.size() == 1) {
            EXPECT_EQ(times[0], start);
        } else {
            const TimeUs spacing = kMinute / static_cast<TimeUs>(times.size());
            for (std::size_t k = 0; k < times.size(); ++k)
                EXPECT_EQ(times[k], start + static_cast<TimeUs>(k) * spacing);
        }
    }
}

TEST(AzureModel, HeavyTailedRates)
{
    AzureModelConfig config = smallConfig();
    config.num_functions = 400;
    config.duration_us = kHour;
    const Trace t = generateAzureTrace(config);
    auto counts = t.invocationCounts();
    std::sort(counts.begin(), counts.end());
    // The busiest function dominates the median one by a large factor.
    EXPECT_GT(counts.back(),
              10 * std::max<std::size_t>(1, counts[counts.size() / 2]));
}

TEST(AzureModel, MaxRateCapsHeavyHitters)
{
    AzureModelConfig config = smallConfig();
    config.max_rate_per_sec = 0.5;
    config.diurnal = false;
    const Trace t = generateAzureTrace(config);
    const auto counts = t.invocationCounts();
    const double duration_sec = toSeconds(config.duration_us);
    for (std::size_t c : counts) {
        // Poisson noise allowance: 3 sigma above the capped mean.
        const double cap = 0.5 * duration_sec;
        EXPECT_LT(static_cast<double>(c), cap + 3 * std::sqrt(cap) + 1);
    }
}

TEST(AzureModel, UtilizationCapKeepsHeavyHittersShort)
{
    AzureModelConfig config = smallConfig();
    config.max_rate_per_sec = 2.0;
    config.warm_median_ms = 5'000.0;  // try to make everything slow
    config.max_utilization = 0.5;
    const Trace t = generateAzureTrace(config);
    const auto counts = t.invocationCounts();
    const double duration_sec = toSeconds(config.duration_us);
    for (const auto& fn : t.functions()) {
        // Approximate the function's mean rate from its count.
        const double rate =
            static_cast<double>(counts[fn.id]) / duration_sec;
        if (rate < 0.05)
            continue;  // too few samples to bound reliably
        const double utilization = rate * toSeconds(fn.warm_us);
        // Allow Poisson noise: observed rate fluctuates around the
        // model rate that the cap was computed from.
        EXPECT_LT(utilization, 1.0) << fn.name;
    }
}

TEST(DiurnalMultiplier, MeanIsOneAndPeakMatches)
{
    const double peak = 2.0;
    const TimeUs period = 24 * kHour;
    double sum = 0.0;
    double max_seen = 0.0;
    const int samples = 2400;
    for (int i = 0; i < samples; ++i) {
        const TimeUs t = period * i / samples;
        const double m = diurnalMultiplier(t, peak, period);
        EXPECT_GE(m, 0.0);
        sum += m;
        max_seen = std::max(max_seen, m);
    }
    EXPECT_NEAR(sum / samples, 1.0, 0.01);
    EXPECT_NEAR(max_seen, peak, 0.01);
}

TEST(DiurnalMultiplier, DisabledWhenFlat)
{
    EXPECT_DOUBLE_EQ(diurnalMultiplier(12345, 1.0, kHour), 1.0);
}

TEST(AzureModel, DiurnalModulatesArrivals)
{
    AzureModelConfig config = smallConfig();
    config.diurnal = true;
    config.diurnal_peak_to_mean = 2.0;
    config.diurnal_period_us = config.duration_us;  // one full cycle
    const Trace t = generateAzureTrace(config);
    // Rates near the cycle middle (peak) exceed rates near the edges.
    std::size_t edge = 0, middle = 0;
    const TimeUs quarter = config.duration_us / 4;
    for (const auto& inv : t.invocations()) {
        if (inv.arrival_us < quarter)
            ++edge;
        else if (inv.arrival_us >= quarter && inv.arrival_us < 3 * quarter)
            ++middle;
    }
    EXPECT_GT(middle, 2 * edge);
}

}  // namespace
}  // namespace faascache

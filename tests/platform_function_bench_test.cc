#include "platform/function_bench.h"

#include <gtest/gtest.h>

namespace faascache {
namespace {

TEST(FunctionBench, CatalogHasSixApps)
{
    EXPECT_EQ(functionBenchCatalog().size(), kNumFunctionBenchApps);
}

TEST(FunctionBench, Table1Values)
{
    const FunctionSpec& cnn =
        functionBenchSpec(FunctionBenchApp::MlInference);
    EXPECT_DOUBLE_EQ(cnn.mem_mb, 512.0);
    EXPECT_EQ(cnn.cold_us, fromSeconds(6.5));
    EXPECT_EQ(cnn.initTime(), fromSeconds(4.5));
    EXPECT_EQ(cnn.warm_us, fromSeconds(2.0));

    const FunctionSpec& web = functionBenchSpec(FunctionBenchApp::WebServing);
    EXPECT_DOUBLE_EQ(web.mem_mb, 64.0);
    EXPECT_EQ(web.initTime(), fromSeconds(2.0));

    const FunctionSpec& fp =
        functionBenchSpec(FunctionBenchApp::FloatingPoint);
    EXPECT_DOUBLE_EQ(fp.mem_mb, 128.0);
    EXPECT_EQ(fp.cold_us, fromSeconds(2.0));
}

TEST(FunctionBench, AllSpecsValid)
{
    for (const auto& spec : functionBenchCatalog())
        EXPECT_TRUE(spec.valid()) << spec.name;
}

TEST(FunctionBench, IdsAreDense)
{
    const auto& catalog = functionBenchCatalog();
    for (std::size_t i = 0; i < catalog.size(); ++i)
        EXPECT_EQ(catalog[i].id, i);
}

TEST(FunctionBench, InitDominatesForMostApps)
{
    // Paper §2.1: initialization can be as much as 80% of total time.
    int init_heavy = 0;
    for (const auto& spec : functionBenchCatalog()) {
        const double frac = static_cast<double>(spec.initTime()) /
            static_cast<double>(spec.cold_us);
        if (frac >= 0.5)
            ++init_heavy;
    }
    EXPECT_GE(init_heavy, 4);
}

TEST(FunctionBench, SubsetRemapsIds)
{
    const auto subset = functionBenchSubset(
        {FunctionBenchApp::FloatingPoint, FunctionBenchApp::MlInference});
    ASSERT_EQ(subset.size(), 2u);
    EXPECT_EQ(subset[0].id, 0u);
    EXPECT_EQ(subset[0].name, "floating-point");
    EXPECT_EQ(subset[1].id, 1u);
    EXPECT_EQ(subset[1].name, "ml-inference-cnn");
}

}  // namespace
}  // namespace faascache

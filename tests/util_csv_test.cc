#include "util/csv.h"

#include <gtest/gtest.h>

#include <sstream>

namespace faascache {
namespace {

TEST(CsvEscape, PlainFieldUnchanged)
{
    EXPECT_EQ(csvEscape("hello"), "hello");
    EXPECT_EQ(csvEscape(""), "");
}

TEST(CsvEscape, CommaQuoted)
{
    EXPECT_EQ(csvEscape("a,b"), "\"a,b\"");
}

TEST(CsvEscape, QuoteDoubled)
{
    EXPECT_EQ(csvEscape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(CsvEscape, NewlineQuoted)
{
    EXPECT_EQ(csvEscape("a\nb"), "\"a\nb\"");
}

TEST(CsvWriter, WritesRows)
{
    std::ostringstream out;
    CsvWriter writer(out);
    writer.writeRow({"a", "b,c", "d"});
    writer.writeRow({"1", "2"});
    EXPECT_EQ(out.str(), "a,\"b,c\",d\n1,2\n");
}

TEST(ParseCsv, SimpleRows)
{
    const auto rows = parseCsv("a,b,c\n1,2,3\n");
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_EQ(rows[0], (std::vector<std::string>{"a", "b", "c"}));
    EXPECT_EQ(rows[1], (std::vector<std::string>{"1", "2", "3"}));
}

TEST(ParseCsv, NoTrailingNewline)
{
    const auto rows = parseCsv("x,y");
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_EQ(rows[0], (std::vector<std::string>{"x", "y"}));
}

TEST(ParseCsv, QuotedFieldWithComma)
{
    const auto rows = parseCsv("\"a,b\",c\n");
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_EQ(rows[0], (std::vector<std::string>{"a,b", "c"}));
}

TEST(ParseCsv, EscapedQuote)
{
    const auto rows = parseCsv("\"say \"\"hi\"\"\"\n");
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_EQ(rows[0][0], "say \"hi\"");
}

TEST(ParseCsv, NewlineInsideQuotes)
{
    const auto rows = parseCsv("\"line1\nline2\",x\n");
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_EQ(rows[0][0], "line1\nline2");
}

TEST(ParseCsv, CarriageReturnsIgnored)
{
    const auto rows = parseCsv("a,b\r\nc,d\r\n");
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_EQ(rows[1], (std::vector<std::string>{"c", "d"}));
}

TEST(ParseCsv, EmptyFieldsPreserved)
{
    const auto rows = parseCsv("a,,c\n");
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_EQ(rows[0], (std::vector<std::string>{"a", "", "c"}));
}

TEST(ParseCsv, EmptyInput)
{
    EXPECT_TRUE(parseCsv("").empty());
    EXPECT_TRUE(parseCsv("\n").empty());
}

TEST(ParseCsv, RoundTripWithWriter)
{
    std::ostringstream out;
    CsvWriter writer(out);
    const std::vector<std::string> row = {"plain", "with,comma",
                                          "with\"quote", "multi\nline"};
    writer.writeRow(row);
    const auto rows = parseCsv(out.str());
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_EQ(rows[0], row);
}

}  // namespace
}  // namespace faascache

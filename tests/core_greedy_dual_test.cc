#include "core/greedy_dual.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/container_pool.h"
#include "sim/simulator.h"
#include "trace/azure_model.h"
#include "util/rng.h"

namespace faascache {
namespace {

// Helper driving a policy + pool pair like the simulator does.
struct Harness
{
    ContainerPool pool;
    GreedyDualPolicy policy;

    explicit Harness(MemMb capacity, GreedyDualConfig config = {})
        : pool(capacity), policy(config)
    {
    }

    Container&
    invokeCold(const FunctionSpec& spec, TimeUs now)
    {
        policy.onInvocationArrival(spec, now);
        Container& c = pool.add(spec, now);
        c.startInvocation(now, now + spec.cold_us);
        policy.onColdStart(c, spec, now);
        c.finishInvocation();
        return c;
    }

    void
    invokeWarm(Container& c, const FunctionSpec& spec, TimeUs now)
    {
        policy.onInvocationArrival(spec, now);
        c.startInvocation(now, now + spec.warm_us);
        policy.onWarmStart(c, spec, now);
        c.finishInvocation();
    }
};

// (memory MB, warm ms, init ms)
FunctionSpec
fn(FunctionId id, MemMb mem, double warm_ms, double init_ms)
{
    return makeFunction(id, "fn" + std::to_string(id), mem,
                        fromMillis(warm_ms), fromMillis(init_ms));
}

TEST(GreedyDual, PriorityFormula)
{
    Harness h(10'000);
    // cost = 2 s init, size = 100 MB, freq = 1, clock = 0.
    const FunctionSpec f = fn(0, 100, 500, 2000);
    Container& c = h.invokeCold(f, 0);
    EXPECT_DOUBLE_EQ(c.priority(), 0.0 + 1.0 * 2.0 / 100.0);
    EXPECT_DOUBLE_EQ(h.policy.priorityOf(f), 1.0 * 2.0 / 100.0);
}

TEST(GreedyDual, FrequencyScalesPriority)
{
    Harness h(10'000);
    const FunctionSpec f = fn(0, 100, 500, 2000);
    Container& c = h.invokeCold(f, 0);
    h.invokeWarm(c, f, kSecond);
    h.invokeWarm(c, f, 2 * kSecond);
    // freq = 3 now.
    EXPECT_DOUBLE_EQ(c.priority(), 3.0 * 2.0 / 100.0);
}

TEST(GreedyDual, EvictsLowestValueFirst)
{
    Harness h(10'000);
    // Low value: huge and cheap to rebuild. High value: small, costly.
    const FunctionSpec big_cheap = fn(0, 1000, 500, 100);
    const FunctionSpec small_costly = fn(1, 50, 500, 4000);
    h.invokeCold(big_cheap, 0);
    h.invokeCold(small_costly, kSecond);

    const auto victims = h.policy.selectVictims(h.pool, 10, 2 * kSecond);
    ASSERT_EQ(victims.size(), 1u);
    EXPECT_EQ(h.pool.get(victims[0])->function(), 0u);
}

TEST(GreedyDual, ClockAdvancesToEvictedPriority)
{
    Harness h(10'000);
    const FunctionSpec f0 = fn(0, 100, 500, 1000);  // value 0.01
    const FunctionSpec f1 = fn(1, 100, 500, 5000);  // value 0.05
    h.invokeCold(f0, 0);
    h.invokeCold(f1, 0);
    EXPECT_DOUBLE_EQ(h.policy.clock(), 0.0);

    const auto victims = h.policy.selectVictims(h.pool, 50, kSecond);
    ASSERT_EQ(victims.size(), 1u);
    EXPECT_DOUBLE_EQ(h.policy.clock(), 0.01);
}

TEST(GreedyDual, ClockTakesMaxOverEvictedSet)
{
    Harness h(10'000);
    const FunctionSpec f0 = fn(0, 100, 500, 1000);  // value 0.01
    const FunctionSpec f1 = fn(1, 100, 500, 5000);  // value 0.05
    const FunctionSpec f2 = fn(2, 100, 500, 9000);  // value 0.09
    h.invokeCold(f0, 0);
    h.invokeCold(f1, 0);
    h.invokeCold(f2, 0);

    // Force evicting two containers: clock = max of the two priorities.
    const auto victims = h.policy.selectVictims(h.pool, 150, kSecond);
    ASSERT_EQ(victims.size(), 2u);
    EXPECT_DOUBLE_EQ(h.policy.clock(), 0.05);
}

TEST(GreedyDual, AgingLetsNewFunctionsSurvive)
{
    // After evictions raise the clock, a fresh low-value function gets a
    // higher priority than stale high-value ones (recency matters).
    Harness h(10'000);
    const FunctionSpec stale = fn(0, 100, 500, 3000);  // value 0.03
    Container& stale_c = h.invokeCold(stale, 0);

    // Evict an even lower-value function so the clock rises above 0.
    const FunctionSpec filler = fn(1, 100, 500, 2000);  // value 0.02
    h.invokeCold(filler, 0);
    auto victims = h.policy.selectVictims(h.pool, 50, kSecond);
    // LRU tie-break inside equal priorities doesn't matter here: the
    // filler (0.02) goes first.
    ASSERT_EQ(victims.size(), 1u);
    EXPECT_EQ(h.pool.get(victims[0])->function(), 1u);
    h.policy.onEviction(*h.pool.get(victims[0]), true, kSecond);
    h.pool.remove(victims[0]);
    EXPECT_DOUBLE_EQ(h.policy.clock(), 0.02);

    // A new cheap function used now outranks the stale valuable one
    // once its clock component counts: 0.02 + 0.015 > 0.00 + 0.03.
    const FunctionSpec fresh = fn(2, 100, 500, 1500);
    Container& fresh_c = h.invokeCold(fresh, 2 * kSecond);
    EXPECT_GT(fresh_c.priority(), stale_c.policyClock() + 0.03 - 1e-12);
}

TEST(GreedyDual, TieBreaksTowardOlderContainerOfSameFunction)
{
    Harness h(10'000);
    const FunctionSpec f = fn(0, 100, 500, 1000);
    Container& first = h.invokeCold(f, 0);
    // Concurrent second container (cold because first was busy).
    h.policy.onInvocationArrival(f, 10);
    Container& second = h.pool.add(f, 10);
    second.startInvocation(10, 10 + f.cold_us);
    h.policy.onColdStart(second, f, 10);
    second.finishInvocation();

    const auto victims = h.policy.selectVictims(h.pool, 50, kSecond);
    ASSERT_EQ(victims.size(), 1u);
    EXPECT_EQ(victims[0], first.id());
}

TEST(GreedyDual, FrequencyResetOnLastEviction)
{
    Harness h(10'000);
    const FunctionSpec f = fn(0, 100, 500, 1000);
    Container& c = h.invokeCold(f, 0);
    h.invokeWarm(c, f, kSecond);
    EXPECT_EQ(h.policy.stats().of(0).frequency, 2);

    h.policy.onEviction(c, /*last_of_function=*/true, 2 * kSecond);
    EXPECT_EQ(h.policy.stats().of(0).frequency, 0);
}

TEST(GreedyDual, NoResetWhenOtherContainersRemain)
{
    Harness h(10'000);
    const FunctionSpec f = fn(0, 100, 500, 1000);
    Container& c = h.invokeCold(f, 0);
    h.policy.onEviction(c, /*last_of_function=*/false, kSecond);
    EXPECT_EQ(h.policy.stats().of(0).frequency, 1);
}

TEST(GreedyDual, BatchEvictionFreesToThreshold)
{
    GreedyDualConfig config;
    config.batch_free_mb = 500;
    Harness h(1000, config);
    const FunctionSpec f = fn(0, 100, 500, 1000);
    for (int i = 0; i < 10; ++i)
        h.invokeCold(fn(static_cast<FunctionId>(i), 100, 500, 1000), 0);
    ASSERT_DOUBLE_EQ(h.pool.freeMb(), 0.0);

    // Needs only 10 MB but the batch threshold demands 500 MB free.
    const auto victims = h.policy.selectVictims(h.pool, 10, kSecond);
    MemMb freed = 0;
    for (ContainerId id : victims)
        freed += h.pool.get(id)->memMb();
    EXPECT_GE(freed, 500.0);
    (void)f;
}

TEST(GreedyDual, VictimsAreBestEffortWhenInsufficient)
{
    Harness h(1000);
    h.invokeCold(fn(0, 200, 500, 1000), 0);
    Container& busy = h.pool.add(fn(1, 800, 500, 1000), 0);
    busy.startInvocation(0, kMinute);  // busy: not evictable

    const auto victims = h.policy.selectVictims(h.pool, 500, kSecond);
    ASSERT_EQ(victims.size(), 1u);  // only the idle 200 MB container
    EXPECT_EQ(h.pool.get(victims[0])->function(), 0u);
}

TEST(GreedyDual, SizeOnlyVariantIgnoresFrequency)
{
    GreedyDualConfig config;
    config.use_frequency = false;
    Harness h(10'000, config);
    const FunctionSpec f = fn(0, 100, 500, 2000);
    Container& c = h.invokeCold(f, 0);
    h.invokeWarm(c, f, kSecond);
    h.invokeWarm(c, f, 2 * kSecond);
    EXPECT_DOUBLE_EQ(c.priority(), 2.0 / 100.0);
}

TEST(GreedyDual, NameIsGD)
{
    EXPECT_EQ(GreedyDualPolicy().name(), "GD");
}

// ---------------------------------------------------------------------------
// Engine conformance: the lazy-deletion heap fast path must be
// observationally identical to the sort-based reference oracle — same
// victim sequences, same counts — on every workload and every ablation
// flag combination.

/** The eight use_{frequency,cost,size} combinations. */
std::vector<GreedyDualConfig>
ablationConfigs(MemMb batch_free_mb)
{
    std::vector<GreedyDualConfig> configs;
    for (int mask = 0; mask < 8; ++mask) {
        GreedyDualConfig config;
        config.use_frequency = (mask & 1) != 0;
        config.use_cost = (mask & 2) != 0;
        config.use_size = (mask & 4) != 0;
        config.batch_free_mb = batch_free_mb;
        configs.push_back(config);
    }
    return configs;
}

/**
 * Drives a heap-engine and a sort-engine policy through an identical
 * randomized invocation stream (one pool each, mirrored operations, so
 * container ids line up) and asserts every selectVictims call returns
 * the same victim sequence.
 */
void
runLockstepTrial(GreedyDualConfig config, std::uint64_t seed)
{
    GreedyDualConfig heap_config = config;
    heap_config.eviction_engine = GdEvictionEngine::LazyHeap;
    GreedyDualConfig sort_config = config;
    sort_config.eviction_engine = GdEvictionEngine::SortReference;

    const MemMb capacity = 1500;
    Harness heap(capacity, heap_config);
    Harness sort(capacity, sort_config);

    Rng rng(seed);
    std::vector<FunctionSpec> functions;
    for (FunctionId id = 0; id < 12; ++id) {
        functions.push_back(fn(id, 50.0 + 25.0 * (id % 7),
                               200.0 + 100.0 * (id % 3),
                               500.0 + 400.0 * (id % 5)));
    }

    TimeUs now = 0;
    for (int step = 0; step < 600; ++step) {
        now += static_cast<TimeUs>(rng.uniformInt(2 * kSecond)) + 1;
        const FunctionSpec& f = functions[rng.uniformInt(functions.size())];

        // Mirror of the simulator's serve path, applied to both pairs.
        Container* heap_warm = heap.pool.findIdleWarm(f.id);
        Container* sort_warm = sort.pool.findIdleWarm(f.id);
        ASSERT_EQ(heap_warm == nullptr, sort_warm == nullptr);
        if (heap_warm != nullptr) {
            heap.invokeWarm(*heap_warm, f, now);
            sort.invokeWarm(*sort_warm, f, now);
            continue;
        }
        if (!heap.pool.fits(f.mem_mb)) {
            const MemMb needed = f.mem_mb - heap.pool.freeMb();
            const auto heap_victims =
                heap.policy.selectVictims(heap.pool, needed, now);
            const auto sort_victims =
                sort.policy.selectVictims(sort.pool, needed, now);
            ASSERT_EQ(heap_victims, sort_victims)
                << "victim sequences diverged at step " << step;

            MemMb freed = 0;
            for (ContainerId id : heap_victims)
                freed += heap.pool.get(id)->memMb();
            if (freed < needed)
                continue;  // simulator would drop the request
            for (ContainerId id : heap_victims) {
                const FunctionId victim_fn = heap.pool.get(id)->function();
                heap.policy.onEviction(*heap.pool.get(id),
                                       heap.pool.countOf(victim_fn) == 1,
                                       now);
                heap.pool.remove(id);
                sort.policy.onEviction(*sort.pool.get(id),
                                       sort.pool.countOf(victim_fn) == 1,
                                       now);
                sort.pool.remove(id);
            }
        }
        heap.invokeCold(f, now);
        sort.invokeCold(f, now);
        ASSERT_EQ(heap.pool.size(), sort.pool.size());
    }
}

TEST(GreedyDualEngines, PropertyVictimSequencesMatchAcrossAblations)
{
    for (const std::uint64_t seed : {11ULL, 22ULL, 33ULL}) {
        for (const MemMb batch : {0.0, 400.0}) {
            for (const GreedyDualConfig& config : ablationConfigs(batch)) {
                SCOPED_TRACE("seed=" + std::to_string(seed) +
                             " batch=" + std::to_string(batch) +
                             " freq=" + std::to_string(config.use_frequency) +
                             " cost=" + std::to_string(config.use_cost) +
                             " size=" + std::to_string(config.use_size));
                runLockstepTrial(config, seed);
            }
        }
    }
}

TEST(GreedyDualEngines, FullSimulationMatchesOracleOnRandomizedTraces)
{
    // End-to-end: identical cold/warm/drop counts (and every other
    // SimResult field) on randomized seeded traces, heap vs oracle,
    // across all ablation combinations and batching settings.
    for (const std::uint64_t seed : {1ULL, 2ULL}) {
        AzureModelConfig trace_config;
        trace_config.seed = seed;
        trace_config.num_functions = 80;
        trace_config.duration_us = 15 * kMinute;
        trace_config.iat_median_sec = 20.0;
        trace_config.max_rate_per_sec = 1.0;
        trace_config.name = "gd-engine-differential";
        const Trace trace = generateAzureTrace(trace_config);

        for (const MemMb batch : {0.0, 512.0}) {
            for (GreedyDualConfig config : ablationConfigs(batch)) {
                SCOPED_TRACE("seed=" + std::to_string(seed) +
                             " batch=" + std::to_string(batch) +
                             " freq=" + std::to_string(config.use_frequency) +
                             " cost=" + std::to_string(config.use_cost) +
                             " size=" + std::to_string(config.use_size));
                SimulatorConfig sim;
                sim.memory_mb = 800.0;  // tight: forces evictions + drops
                sim.memory_sample_interval_us = kMinute;

                config.eviction_engine = GdEvictionEngine::LazyHeap;
                const SimResult heap_result = simulateTrace(
                    trace, std::make_unique<GreedyDualPolicy>(config), sim);
                config.eviction_engine = GdEvictionEngine::SortReference;
                const SimResult sort_result = simulateTrace(
                    trace, std::make_unique<GreedyDualPolicy>(config), sim);

                EXPECT_EQ(heap_result.cold_starts, sort_result.cold_starts);
                EXPECT_EQ(heap_result.warm_starts, sort_result.warm_starts);
                EXPECT_EQ(heap_result.dropped, sort_result.dropped);
                EXPECT_EQ(heap_result.evictions, sort_result.evictions);
                EXPECT_TRUE(heap_result == sort_result);
            }
        }
    }
}

TEST(GreedyDualEngines, HeapStaysCompactedUnderChurn)
{
    // The lazy heap accumulates superseded snapshots; compaction must
    // keep it within a constant factor of the live container count.
    Harness h(100'000);
    const FunctionSpec f = fn(0, 100, 500, 1000);
    Container& c = h.invokeCold(f, 0);
    for (int i = 1; i <= 5000; ++i)
        h.invokeWarm(c, f, i * kSecond);
    EXPECT_GT(h.policy.heapSize(), 1000u);  // superseded snapshots pile up
    // An eviction round (even a no-op one) triggers compaction.
    (void)h.policy.selectVictims(h.pool, 0, 5001 * kSecond);
    EXPECT_LE(h.policy.heapSize(), 64u);
    // After an eviction round that actually pops, the heap shrinks to
    // O(live) on compaction.
    for (int i = 0; i < 70; ++i)
        h.invokeCold(fn(static_cast<FunctionId>(i + 1), 100, 500, 1000),
                     6000 * kSecond);
    (void)h.policy.selectVictims(h.pool, 200, 7000 * kSecond);
    EXPECT_LE(h.policy.heapSize(), 4 * (h.pool.size() + 1));
}

}  // namespace
}  // namespace faascache

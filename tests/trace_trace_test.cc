#include "trace/trace.h"

#include <gtest/gtest.h>

namespace faascache {
namespace {

Trace
makeSmallTrace()
{
    Trace t("small");
    t.addFunction(makeFunction(0, "a", 100, fromSeconds(1), fromSeconds(1)));
    t.addFunction(makeFunction(1, "b", 200, fromSeconds(2), fromSeconds(2)));
    t.addInvocation(0, 0);
    t.addInvocation(1, kSecond);
    t.addInvocation(0, 2 * kSecond);
    return t;
}

TEST(FunctionSpec, Validity)
{
    FunctionSpec ok = makeFunction(0, "x", 64, fromMillis(10), fromMillis(5));
    EXPECT_TRUE(ok.valid());
    EXPECT_EQ(ok.initTime(), fromMillis(5));
    EXPECT_EQ(ok.cold_us, fromMillis(15));

    FunctionSpec bad = ok;
    bad.mem_mb = 0;
    EXPECT_FALSE(bad.valid());

    bad = ok;
    bad.cold_us = bad.warm_us - 1;
    EXPECT_FALSE(bad.valid());

    bad = ok;
    bad.id = kInvalidFunction;
    EXPECT_FALSE(bad.valid());
}

TEST(Trace, ValidateAcceptsGoodTrace)
{
    EXPECT_TRUE(makeSmallTrace().validate());
}

TEST(Trace, ValidateRejectsUnknownFunction)
{
    Trace t = makeSmallTrace();
    t.addInvocation(5, 0);
    EXPECT_FALSE(t.validate());
}

TEST(Trace, ValidateRejectsNegativeTime)
{
    Trace t = makeSmallTrace();
    t.addInvocation(0, -1);
    EXPECT_FALSE(t.validate());
}

TEST(Trace, SortInvocations)
{
    Trace t("unsorted");
    t.addFunction(makeFunction(0, "a", 1, 1, 1));
    t.addInvocation(0, 30);
    t.addInvocation(0, 10);
    t.addInvocation(0, 20);
    EXPECT_FALSE(t.isSorted());
    t.sortInvocations();
    EXPECT_TRUE(t.isSorted());
    EXPECT_EQ(t.invocations()[0].arrival_us, 10);
    EXPECT_EQ(t.invocations()[2].arrival_us, 30);
}

TEST(Trace, SortIsStableForEqualTimes)
{
    Trace t("ties");
    t.addFunction(makeFunction(0, "a", 1, 1, 1));
    t.addFunction(makeFunction(1, "b", 1, 1, 1));
    t.addInvocation(0, 10);
    t.addInvocation(1, 10);
    t.sortInvocations();
    EXPECT_EQ(t.invocations()[0].function, 0u);
    EXPECT_EQ(t.invocations()[1].function, 1u);
}

TEST(Trace, StatsComputed)
{
    const TraceStats s = makeSmallTrace().stats();
    EXPECT_EQ(s.num_functions, 2u);
    EXPECT_EQ(s.num_invocations, 3u);
    EXPECT_EQ(s.duration_us, 2 * kSecond);
    EXPECT_NEAR(s.requests_per_sec, 1.5, 1e-9);
    EXPECT_EQ(s.avg_iat_us, kSecond);
    EXPECT_DOUBLE_EQ(s.total_unique_mem_mb, 300.0);
}

TEST(Trace, StatsEmptyTrace)
{
    Trace t("empty");
    const TraceStats s = t.stats();
    EXPECT_EQ(s.num_invocations, 0u);
    EXPECT_EQ(s.requests_per_sec, 0.0);
}

TEST(Trace, InvocationCounts)
{
    const auto counts = makeSmallTrace().invocationCounts();
    ASSERT_EQ(counts.size(), 2u);
    EXPECT_EQ(counts[0], 2u);
    EXPECT_EQ(counts[1], 1u);
}

TEST(Trace, SubsetRemapsIds)
{
    const Trace t = makeSmallTrace();
    const Trace sub = t.subset({1}, "sub");
    ASSERT_EQ(sub.functions().size(), 1u);
    EXPECT_EQ(sub.functions()[0].id, 0u);
    EXPECT_EQ(sub.functions()[0].name, "b");
    ASSERT_EQ(sub.invocations().size(), 1u);
    EXPECT_EQ(sub.invocations()[0].function, 0u);
    EXPECT_TRUE(sub.validate());
}

TEST(Trace, SubsetPreservesOrder)
{
    const Trace t = makeSmallTrace();
    const Trace sub = t.subset({0, 1}, "all");
    EXPECT_EQ(sub.invocations().size(), 3u);
    EXPECT_TRUE(sub.isSorted());
}

TEST(Trace, SubsetIgnoresDuplicateIds)
{
    const Trace t = makeSmallTrace();
    const Trace sub = t.subset({0, 0}, "dup");
    EXPECT_EQ(sub.functions().size(), 1u);
}

TEST(Trace, SubsetThrowsOnBadId)
{
    const Trace t = makeSmallTrace();
    EXPECT_THROW(t.subset({9}, "bad"), std::out_of_range);
}

// Boundary the sharded-cluster partitioner depends on: a kept function
// with zero invocations must stay in the subset's catalog with a dense
// id (a server whose hash-home functions never fire still exists, and
// its shard must still participate in barriers with an empty cursor).
TEST(Trace, SubsetKeepsZeroInvocationFunctions)
{
    Trace t = makeSmallTrace();
    t.addFunction(
        makeFunction(2, "idle", 64, fromSeconds(1), fromSeconds(1)));
    // No invocations of "idle" at all.
    const Trace sub = t.subset({1, 2}, "with-idle");
    ASSERT_EQ(sub.functions().size(), 2u);
    EXPECT_EQ(sub.functions()[0].name, "b");
    EXPECT_EQ(sub.functions()[1].name, "idle");
    EXPECT_EQ(sub.functions()[1].id, 1u);
    ASSERT_EQ(sub.invocations().size(), 1u);
    EXPECT_EQ(sub.invocations()[0].function, 0u);
    EXPECT_TRUE(sub.validate());
    const std::vector<std::size_t> counts = sub.invocationCounts();
    ASSERT_EQ(counts.size(), 2u);
    EXPECT_EQ(counts[1], 0u);
}

}  // namespace
}  // namespace faascache

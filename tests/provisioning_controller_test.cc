#include "provisioning/proportional_controller.h"

#include <gtest/gtest.h>

#include "analysis/reuse_distance.h"

namespace faascache {
namespace {

/** Simple synthetic curve: distances 1k..10k MB uniformly. */
HitRatioCurve
linearCurve()
{
    std::vector<double> distances;
    for (int i = 1; i <= 10; ++i)
        distances.push_back(i * 1'000.0);
    return HitRatioCurve::fromReuseDistances(distances);
}

ControllerConfig
config()
{
    ControllerConfig c;
    c.target_miss_speed = 1.0;  // 1 cold start / sec
    c.deadband = 0.30;
    c.arrival_smoothing_alpha = 1.0;  // no smoothing: deterministic tests
    c.min_size_mb = 500;
    c.max_size_mb = 50'000;
    return c;
}

TEST(Controller, NoResizeInsideDeadband)
{
    ProportionalController ctl(linearCurve(), config(), 4'000);
    // Error 20% < 30%: size unchanged.
    EXPECT_DOUBLE_EQ(ctl.update(10.0, 1.2), 4'000.0);
    EXPECT_DOUBLE_EQ(ctl.update(10.0, 0.8), 4'000.0);
}

TEST(Controller, GrowsWhenMissSpeedTooHigh)
{
    ProportionalController ctl(linearCurve(), config(), 2'000);
    // Observed 5 misses/s vs target 1; arrival 10/s.
    // Desired hit ratio = 1 - 1/10 = 0.9 -> size 9000 on this curve.
    const MemMb next = ctl.update(10.0, 5.0);
    EXPECT_DOUBLE_EQ(next, 9'000.0);
    EXPECT_GT(next, 2'000.0);
}

TEST(Controller, ShrinksWhenMissSpeedTooLow)
{
    ProportionalController ctl(linearCurve(), config(), 9'000);
    // Hardly any misses and low arrivals: shrink.
    // lambda = 2/s, desired hit ratio = 1 - 1/2 = 0.5 -> size 5000.
    const MemMb next = ctl.update(2.0, 0.1);
    EXPECT_DOUBLE_EQ(next, 5'000.0);
}

TEST(Controller, ClampsToMin)
{
    ProportionalController ctl(linearCurve(), config(), 5'000);
    // Arrivals below the target miss speed: even an empty cache meets
    // the target, so the size clamps to the floor.
    const MemMb next = ctl.update(0.9, 0.0);
    EXPECT_DOUBLE_EQ(next, 500.0);
}

TEST(Controller, ZeroArrivalsFallsToFloor)
{
    ProportionalController ctl(linearCurve(), config(), 5'000);
    EXPECT_DOUBLE_EQ(ctl.update(0.0, 2.0), 500.0);
}

TEST(Controller, InitialSizeClamped)
{
    ProportionalController ctl(linearCurve(), config(), 1'000'000);
    EXPECT_DOUBLE_EQ(ctl.currentSize(), 50'000.0);
}

TEST(Controller, SmoothingDampensArrivalSpikes)
{
    ControllerConfig c = config();
    c.arrival_smoothing_alpha = 0.1;
    ProportionalController ctl(linearCurve(), c, 4'000);
    ctl.update(10.0, 1.0);  // within deadband, but EMA initialized to 10
    // A one-period spike to 100/s barely moves the smoothed rate.
    ctl.update(100.0, 5.0);
    EXPECT_NEAR(ctl.smoothedArrivalRate(), 0.1 * 100 + 0.9 * 10, 1e-9);
}

TEST(Controller, RejectsBadConfig)
{
    ControllerConfig bad = config();
    bad.target_miss_speed = 0.0;
    EXPECT_THROW(ProportionalController(linearCurve(), bad, 1'000),
                 std::invalid_argument);

    ControllerConfig bad2 = config();
    bad2.max_size_mb = bad2.min_size_mb;
    EXPECT_THROW(ProportionalController(linearCurve(), bad2, 1'000),
                 std::invalid_argument);
}

TEST(Controller, ConvergesOnStationaryWorkload)
{
    // Feed a consistent (arrival, miss) signal derived from the curve:
    // the controller should settle at a fixed size.
    ProportionalController ctl(linearCurve(), config(), 2'000);
    const double lambda = 10.0;
    MemMb size = ctl.currentSize();
    for (int i = 0; i < 20; ++i) {
        const HitRatioCurve curve = linearCurve();
        const double miss_speed = lambda * curve.missRatio(size);
        size = ctl.update(lambda, miss_speed);
    }
    const HitRatioCurve curve = linearCurve();
    const double final_miss = lambda * curve.missRatio(size);
    // Settled within the deadband of the target.
    EXPECT_NEAR(final_miss, 1.0, 0.31);
}

TEST(Controller, CapacityLossInflatesSizeRequest)
{
    // Same signal, half the fleet: the surviving capacity must be asked
    // for twice the size so the working set stays cached.
    ProportionalController full(linearCurve(), config(), 2'000);
    ProportionalController degraded(linearCurve(), config(), 2'000);
    degraded.setAvailableFraction(0.5);
    const MemMb base = full.update(10.0, 5.0);    // 9,000 on this curve
    const MemMb boosted = degraded.update(10.0, 5.0);
    EXPECT_DOUBLE_EQ(boosted, 2.0 * base);
}

TEST(Controller, FullFractionIsNeutral)
{
    ProportionalController plain(linearCurve(), config(), 2'000);
    ProportionalController touched(linearCurve(), config(), 2'000);
    touched.setAvailableFraction(0.5);
    touched.setAvailableFraction(1.0);  // recovery resets compensation
    EXPECT_DOUBLE_EQ(plain.update(10.0, 5.0), touched.update(10.0, 5.0));
}

TEST(Controller, CompensatedSizeStillClamped)
{
    ProportionalController ctl(linearCurve(), config(), 2'000);
    ctl.setAvailableFraction(0.01);  // absurd loss: clamp holds
    const MemMb next = ctl.update(10.0, 5.0);
    EXPECT_DOUBLE_EQ(next, config().max_size_mb);
}

TEST(Controller, OverloadPressureBypassesDeadbandAndGrows)
{
    ControllerConfig cfg = config();
    cfg.overload_grow_frac = 1.0;
    ProportionalController ctl(linearCurve(), cfg, 9'000);
    // Inside the deadband (error 20%) a plain update holds the size...
    EXPECT_DOUBLE_EQ(ctl.update(10.0, 1.2), 9'000.0);
    // ...but drop pressure overrides it: never shrink, grow by
    // (1 + frac * pressure) = 1.5x -> 13,500.
    ctl.noteOverloadPressure(0.5);
    EXPECT_DOUBLE_EQ(ctl.update(10.0, 1.2), 13'500.0);
    // Pressure is consumed: the next quiet update holds again.
    EXPECT_DOUBLE_EQ(ctl.update(10.0, 1.2), 13'500.0);
}

TEST(Controller, OverloadPressureIgnoredWhenDisabled)
{
    // Default overload_grow_frac = 0: noteOverloadPressure is inert and
    // the update stream is identical to an untouched controller.
    ProportionalController plain(linearCurve(), config(), 4'000);
    ProportionalController pressed(linearCurve(), config(), 4'000);
    pressed.noteOverloadPressure(1.0);
    EXPECT_DOUBLE_EQ(plain.update(10.0, 1.2), pressed.update(10.0, 1.2));
    EXPECT_DOUBLE_EQ(plain.update(10.0, 5.0), pressed.update(10.0, 5.0));
}

TEST(Controller, OverloadGrowthStillClamped)
{
    ControllerConfig cfg = config();
    cfg.overload_grow_frac = 100.0;
    ProportionalController ctl(linearCurve(), cfg, 9'000);
    ctl.noteOverloadPressure(1.0);
    EXPECT_DOUBLE_EQ(ctl.update(10.0, 1.2), cfg.max_size_mb);
}

TEST(Controller, RejectsBadFraction)
{
    ProportionalController ctl(linearCurve(), config(), 2'000);
    EXPECT_THROW(ctl.setAvailableFraction(0.0), std::invalid_argument);
    EXPECT_THROW(ctl.setAvailableFraction(-0.5), std::invalid_argument);
    EXPECT_THROW(ctl.setAvailableFraction(1.5), std::invalid_argument);
    EXPECT_DOUBLE_EQ(ctl.availableFraction(), 1.0);  // unchanged
}

}  // namespace
}  // namespace faascache

// Property-style sweeps over the analysis substrate: hit-ratio-curve
// laws and reuse-distance equivalences on randomized traces.
#include <gtest/gtest.h>

#include "analysis/hit_ratio_curve.h"
#include "analysis/reuse_distance.h"
#include "analysis/shards.h"
#include "trace/azure_model.h"
#include "util/rng.h"

namespace faascache {
namespace {

class AnalysisProperties : public testing::TestWithParam<std::uint64_t>
{
  protected:
    Trace
    randomTrace() const
    {
        AzureModelConfig config;
        config.seed = GetParam();
        config.num_functions = 80 + (GetParam() % 5) * 40;
        config.duration_us = 10 * kMinute;
        config.iat_median_sec = 15.0;
        return generateAzureTrace(config);
    }
};

TEST_P(AnalysisProperties, FenwickMatchesNaive)
{
    const Trace t = randomTrace();
    EXPECT_EQ(computeReuseDistances(t), computeReuseDistancesNaive(t));
}

TEST_P(AnalysisProperties, CurveIsMonotoneCdf)
{
    const Trace t = randomTrace();
    const HitRatioCurve curve =
        HitRatioCurve::fromReuseDistances(computeReuseDistances(t));
    double prev = -1.0;
    for (MemMb size = 0; size < 60'000; size += 1'500) {
        const double h = curve.hitRatio(size);
        EXPECT_GE(h, prev);
        EXPECT_GE(h, 0.0);
        EXPECT_LE(h, curve.maxHitRatio() + 1e-12);
        prev = h;
    }
}

TEST_P(AnalysisProperties, InverseIsRightContinuousLowerBound)
{
    const Trace t = randomTrace();
    const HitRatioCurve curve =
        HitRatioCurve::fromReuseDistances(computeReuseDistances(t));
    Rng rng(GetParam());
    for (int i = 0; i < 32; ++i) {
        const double target = rng.uniform(0.0, 1.0);
        const MemMb size = curve.sizeForHitRatio(target);
        EXPECT_GE(curve.hitRatio(size) + 1e-12,
                  std::min(target, curve.maxHitRatio()));
        // Minimality at a coarse granularity: a 5% smaller cache cannot
        // still meet the target unless the curve is flat there.
        if (size > 1.0) {
            EXPECT_LE(curve.hitRatio(size * 0.95),
                      curve.hitRatio(size) + 1e-12);
        }
    }
}

TEST_P(AnalysisProperties, CompulsoryMissesEqualUniqueFunctions)
{
    const Trace t = randomTrace();
    const auto distances = computeReuseDistances(t);
    std::size_t first_touches = 0;
    for (double d : distances) {
        if (!isFiniteReuseDistance(d))
            ++first_touches;
    }
    EXPECT_EQ(first_touches, t.functions().size());
}

TEST_P(AnalysisProperties, ShardsSubsetOfExactSupport)
{
    // Every finite SHARDS distance, unscaled, must appear among the
    // distances of the sampled sub-trace — verified indirectly: scaled
    // distances divided by 1/R are non-negative and the infinite marker
    // count equals the sampled function count.
    const Trace t = randomTrace();
    const ShardsResult shards = shardsSample(t, 0.5, GetParam());
    std::size_t infinite = 0;
    for (double d : shards.scaled_distances) {
        if (!isFiniteReuseDistance(d))
            ++infinite;
        else
            EXPECT_GE(d, 0.0);
    }
    EXPECT_EQ(infinite, shards.sampled_functions);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AnalysisProperties,
                         testing::Values(1, 2, 3, 5, 8, 13));

}  // namespace
}  // namespace faascache

// Differential battery for the streaming trace substrate (DESIGN.md
// §4h): every consumer — keep-alive simulator, platform server,
// fault-aware cluster, elastic controller, sweep runner — must produce
// byte-identical results whether the workload arrives as a
// materialized Trace, a TraceSource cursor, a memory-mapped
// FtraceSource, or an on-the-fly GeneratedSource, across policies,
// fault plans, balancing modes, backends, and --jobs counts.
//
// Byte identity is asserted on the checkpoint payload codecs (hexfloat
// doubles), so a mismatch is a real divergence, not formatting noise.
#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/policy_factory.h"
#include "platform/cluster.h"
#include "platform/experiment_checkpoint.h"
#include "platform/fault_injection.h"
#include "platform/server.h"
#include "provisioning/elastic_simulation.h"
#include "provisioning/elastic_sweep.h"
#include "sim/simulator.h"
#include "sim/sweep_checkpoint.h"
#include "sim/sweep_runner.h"
#include "trace/azure_model.h"
#include "trace/ftrace_format.h"
#include "trace/function_spec.h"
#include "trace/generated_source.h"
#include "trace/invocation_source.h"
#include "trace/patterns.h"
#include "trace/trace.h"
#include "util/audit.h"

namespace faascache {
namespace {

/** Compile a trace to a temp .ftrace file; removed on destruction.
 *  Small chunks force multi-chunk streaming in every test. */
class CompiledTrace
{
  public:
    CompiledTrace(const Trace& trace, const std::string& tag,
                  std::uint32_t chunk_capacity = 256)
        : path_(std::string(::testing::TempDir()) +
                "faascache_streamdiff_" + tag + ".ftrace")
    {
        std::remove(path_.c_str());
        TraceSource source(trace);
        writeFtraceFile(path_, source, chunk_capacity);
    }
    ~CompiledTrace() { std::remove(path_.c_str()); }

    FtraceSource open() const { return FtraceSource(path_); }
    const std::string& path() const { return path_; }

  private:
    std::string path_;
};

AzureModelConfig
workloadConfig()
{
    AzureModelConfig config;
    config.seed = 31;
    config.num_functions = 80;
    config.duration_us = 30 * kMinute;
    config.iat_median_sec = 25.0;
    return config;
}

const Trace&
azureWorkload()
{
    static const Trace kTrace = generateAzureTrace(workloadConfig());
    return kTrace;
}

FaultPlan
clusterFaults()
{
    FaultPlan plan;
    plan.spawn_failure_prob = 0.1;
    plan.spawn_retry_delay_us = 150 * kMillisecond;
    plan.straggler_prob = 0.15;
    plan.straggler_multiplier = 2.5;
    plan.crashes.push_back(CrashEvent{0, 5 * kMinute, 2 * kMinute});
    plan.crashes.push_back(CrashEvent{2, 12 * kMinute, 90 * kSecond});
    plan.oom_kills.push_back(OomKillEvent{1, 8 * kMinute});
    return plan;
}

// --- Simulator: all four source shapes agree for every policy. ------

TEST(StreamingDifferential, SimulatorAgreesAcrossAllSourceShapes)
{
    const Trace& trace = azureWorkload();
    const CompiledTrace compiled(trace, "sim");

    for (PolicyKind kind : allPolicyKinds()) {
        for (const MemMb memory : {2'000.0, 6'000.0}) {
            SimulatorConfig config;
            config.memory_mb = memory;

            const std::string oracle = encodeCheckpointPayload(
                "cell",
                simulateTrace(trace, makePolicy(kind, {}), config));
            const std::string label = policyKindName(kind) + "/" +
                std::to_string(static_cast<int>(memory)) + "MB";

            TraceSource cursor(trace);
            EXPECT_EQ(encodeCheckpointPayload(
                          "cell", simulateSource(
                                      cursor, makePolicy(kind, {}),
                                      config)),
                      oracle)
                << "TraceSource diverged: " << label;

            FtraceSource mapped = compiled.open();
            EXPECT_EQ(encodeCheckpointPayload(
                          "cell", simulateSource(
                                      mapped, makePolicy(kind, {}),
                                      config)),
                      oracle)
                << "FtraceSource diverged: " << label;

            const auto generated = makeAzureSource(workloadConfig());
            EXPECT_EQ(encodeCheckpointPayload(
                          "cell", simulateSource(
                                      *generated, makePolicy(kind, {}),
                                      config)),
                      oracle)
                << "GeneratedSource diverged: " << label;
        }
    }
}

// --- Server: streamed run under fault plans, both backends. ---------

TEST(StreamingDifferential, ServerStreamedRunAgreesUnderFaults)
{
    const Trace& trace = azureWorkload();
    const CompiledTrace compiled(trace, "server");

    FaultPlan plan;
    plan.spawn_failure_prob = 0.12;
    plan.spawn_retry_delay_us = 100 * kMillisecond;
    plan.straggler_prob = 0.1;
    plan.straggler_multiplier = 2.0;
    plan.crashes.push_back(CrashEvent{0, 6 * kMinute, 90 * kSecond});
    plan.crashes.push_back(CrashEvent{0, 20 * kMinute, 60 * kSecond});

    for (PolicyKind kind :
         {PolicyKind::GreedyDual, PolicyKind::Ttl, PolicyKind::Hist}) {
        for (const bool faulty : {false, true}) {
            ServerConfig config;
            config.cores = 4;
            config.memory_mb = 3'000.0;
            Auditor audit;
            config.audit = &audit;

            auto runWith = [&](auto&& workload,
                               PlatformBackend backend) {
                ServerConfig c = config;
                c.platform_backend = backend;
                Server server(makePolicy(kind, {}), c);
                std::unique_ptr<FaultInjector> injector;
                if (faulty) {
                    injector = std::make_unique<FaultInjector>(plan, 0);
                    server.setFaultInjector(injector.get());
                }
                return encodePlatformCheckpointPayload(
                    "cell", server.run(workload));
            };
            const std::string label = policyKindName(kind) +
                (faulty ? "/faults" : "/clean");

            const std::string oracle =
                runWith(trace, PlatformBackend::Reference);
            EXPECT_EQ(runWith(trace, PlatformBackend::Dense), oracle)
                << "Dense(Trace) diverged: " << label;

            FtraceSource mapped = compiled.open();
            EXPECT_EQ(runWith(mapped, PlatformBackend::Dense), oracle)
                << "Dense(FtraceSource) diverged: " << label;

            FtraceSource mapped_ref = compiled.open();
            EXPECT_EQ(runWith(mapped_ref, PlatformBackend::Reference),
                      oracle)
                << "Reference(FtraceSource) diverged: " << label;
            EXPECT_EQ(audit.violationCount(), 0)
                << label << ": " << audit.report();
        }
    }
}

// --- Cluster: split + fault-aware streamed paths, all balancers. ----

TEST(StreamingDifferential, ClusterAgreesAcrossSourcesAndBalancers)
{
    const Trace& trace = azureWorkload();
    const CompiledTrace compiled(trace, "cluster");

    for (const LoadBalancing balancing :
         {LoadBalancing::Random, LoadBalancing::RoundRobin,
          LoadBalancing::FunctionHash}) {
        for (const bool faulty : {false, true}) {
            ClusterConfig config;
            config.num_servers = 3;
            config.balancing = balancing;
            config.seed = 77;
            config.server.cores = 2;
            config.server.memory_mb = 1'500.0;
            if (faulty) {
                config.faults = clusterFaults();
                config.failover.shed_queue_depth = 24;
                config.failover.retry_budget.ratio = 0.5;
                config.failover.retry_budget.burst = 16.0;
                config.failover.breaker.failure_threshold = 8;
                config.failover.breaker.open_duration_us = 10 * kSecond;
            }
            const std::string label =
                std::to_string(static_cast<int>(balancing)) +
                (faulty ? "/faults" : "/clean");

            ClusterConfig reference = config;
            reference.server.platform_backend =
                PlatformBackend::Reference;
            const std::string oracle = encodeClusterCheckpointPayload(
                "cell",
                runCluster(trace, PolicyKind::GreedyDual, reference));

            EXPECT_EQ(
                encodeClusterCheckpointPayload(
                    "cell",
                    runCluster(trace, PolicyKind::GreedyDual, config)),
                oracle)
                << "Dense(Trace) cluster diverged: " << label;

            FtraceSource mapped = compiled.open();
            EXPECT_EQ(
                encodeClusterCheckpointPayload(
                    "cell",
                    runCluster(mapped, PolicyKind::GreedyDual, config)),
                oracle)
                << "Dense(FtraceSource) cluster diverged: " << label;

            FtraceSource mapped_ref = compiled.open();
            EXPECT_EQ(
                encodeClusterCheckpointPayload(
                    "cell", runCluster(mapped_ref,
                                       PolicyKind::GreedyDual,
                                       reference)),
                oracle)
                << "Reference(FtraceSource) cluster diverged: "
                << label;
        }
    }
}

// --- Cluster: sharded execution is shard-count invariant, fed by
//     per-shard cursors over ONE shared .ftrace mapping. -------------

TEST(StreamingDifferential, ClusterShardCountInvariance)
{
    const Trace& trace = azureWorkload();
    const CompiledTrace compiled(trace, "shards");
    // One mapping for the whole test: every shard of every run below
    // streams through its own cursor over this region (DESIGN.md §4i).
    const std::shared_ptr<FtraceRegion> region =
        FtraceRegion::open(compiled.path());
    ShardedWorkload workload;
    workload.make_full = [&region] { return region->makeCursor(); };

    for (const LoadBalancing balancing :
         {LoadBalancing::Random, LoadBalancing::RoundRobin,
          LoadBalancing::FunctionHash}) {
        for (const bool faulty : {false, true}) {
            ClusterConfig config;
            config.num_servers = 3;
            config.balancing = balancing;
            config.seed = 77;
            config.server.cores = 2;
            config.server.memory_mb = 1'500.0;
            if (faulty) {
                config.faults = clusterFaults();
                config.failover.shed_queue_depth = 24;
                config.failover.retry_budget.ratio = 0.5;
                config.failover.retry_budget.burst = 16.0;
                config.failover.breaker.failure_threshold = 8;
                config.failover.breaker.open_duration_us = 10 * kSecond;
            }
            const std::string label =
                std::to_string(static_cast<int>(balancing)) +
                (faulty ? "/faults" : "/clean");

            ClusterConfig sharded = config;
            sharded.shards = 1;
            const std::string oracle = encodeClusterCheckpointPayload(
                "cell",
                runCluster(workload, PolicyKind::GreedyDual, sharded));

            if (!faulty) {
                // The fault-free sharded split must also match the
                // legacy single-threaded engine byte-for-byte.
                EXPECT_EQ(
                    encodeClusterCheckpointPayload(
                        "cell",
                        runCluster(trace, PolicyKind::GreedyDual,
                                   config)),
                    oracle)
                    << "sharded split diverged from legacy: " << label;
            }

            // 8 shards on a 3-server fleet also covers the clamp to
            // one-shard-per-server.
            for (const std::size_t shards : {2u, 4u, 8u}) {
                sharded.shards = shards;
                EXPECT_EQ(
                    encodeClusterCheckpointPayload(
                        "cell", runCluster(workload,
                                           PolicyKind::GreedyDual,
                                           sharded)),
                    oracle)
                    << "shards=" << shards << " diverged: " << label;
            }
        }
    }
}

// --- Elastic: streamed source drives the online controller. ---------

TEST(StreamingDifferential, ElasticSimulationAgreesAcrossSources)
{
    const Trace& trace = azureWorkload();
    const CompiledTrace compiled(trace, "elastic");

    ElasticConfig config;
    config.control_period_us = 5 * kMinute;
    config.initial_size_mb = 4'000.0;
    config.curve_refresh_period_us = 10 * kMinute;
    const ControllerConfig controller;

    const std::string oracle = encodeElasticCheckpointPayload(
        "cell",
        runElasticSimulation(
            trace, makePolicy(PolicyKind::GreedyDual, {}), controller,
            config));

    TraceSource cursor(trace);
    EXPECT_EQ(
        encodeElasticCheckpointPayload(
            "cell", runElasticSimulation(
                        cursor, makePolicy(PolicyKind::GreedyDual, {}),
                        controller, config)),
        oracle)
        << "TraceSource elastic diverged";

    FtraceSource mapped = compiled.open();
    EXPECT_EQ(
        encodeElasticCheckpointPayload(
            "cell", runElasticSimulation(
                        mapped, makePolicy(PolicyKind::GreedyDual, {}),
                        controller, config)),
        oracle)
        << "FtraceSource elastic diverged";
}

// --- Sweep: streamed cells are --jobs invariant. --------------------

TEST(StreamingDifferential, StreamedSweepIsJobsInvariant)
{
    const Trace& trace = azureWorkload();
    const CompiledTrace compiled(trace, "sweep");

    auto makeCells = [&]() {
        std::vector<SweepCell> cells;
        for (PolicyKind kind :
             {PolicyKind::GreedyDual, PolicyKind::Ttl,
              PolicyKind::Lru}) {
            for (const MemMb memory : {1'500.0, 3'000.0, 6'000.0}) {
                cells.push_back(makeStreamCell(
                    [&compiled]() {
                        return std::make_unique<FtraceSource>(
                            compiled.path());
                    },
                    kind, memory));
            }
        }
        return cells;
    };

    const std::vector<SimResult> serial = runSweep(makeCells(), 1);
    const std::vector<SimResult> parallel = runSweep(makeCells(), 4);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i)
        EXPECT_EQ(encodeCheckpointPayload("cell", parallel[i]),
                  encodeCheckpointPayload("cell", serial[i]))
            << "cell " << i << " differs between --jobs 1 and 4";

    // ... and streamed cells agree with the materialized oracle cells.
    std::vector<SweepCell> oracle_cells;
    for (PolicyKind kind :
         {PolicyKind::GreedyDual, PolicyKind::Ttl, PolicyKind::Lru}) {
        for (const MemMb memory : {1'500.0, 3'000.0, 6'000.0})
            oracle_cells.push_back(makeCell(trace, kind, memory));
    }
    const std::vector<SimResult> oracle = runSweep(oracle_cells, 2);
    for (std::size_t i = 0; i < oracle.size(); ++i)
        EXPECT_EQ(encodeCheckpointPayload("cell", serial[i]),
                  encodeCheckpointPayload("cell", oracle[i]))
            << "streamed cell " << i
            << " diverged from the materialized oracle";
}

}  // namespace
}  // namespace faascache

#include <gtest/gtest.h>

#include <cmath>

#include "trace/patterns.h"

namespace faascache {
namespace {

std::vector<FunctionSpec>
twoFunctions()
{
    return {
        makeFunction(0, "fast", 64, fromMillis(100), fromMillis(500)),
        makeFunction(1, "slow", 512, fromSeconds(1), fromSeconds(3)),
    };
}

TEST(PoissonTrace, MeanRateMatchesConfigured)
{
    const Trace t = makePoissonTrace(twoFunctions(),
                                     {kSecond, 10 * kSecond}, kHour, 1,
                                     "poisson");
    const auto counts = t.invocationCounts();
    // 3600 expected for fn0, 360 for fn1; Poisson 3-sigma bounds.
    EXPECT_NEAR(static_cast<double>(counts[0]), 3600.0,
                3 * std::sqrt(3600.0));
    EXPECT_NEAR(static_cast<double>(counts[1]), 360.0,
                3 * std::sqrt(360.0));
}

TEST(PoissonTrace, SortedAndValid)
{
    const Trace t = makePoissonTrace(twoFunctions(), {kSecond, kSecond},
                                     10 * kMinute, 2, "poisson");
    EXPECT_TRUE(t.validate());
    EXPECT_TRUE(t.isSorted());
}

TEST(PoissonTrace, DeterministicInSeed)
{
    const Trace a = makePoissonTrace(twoFunctions(), {kSecond, kSecond},
                                     10 * kMinute, 3, "p");
    const Trace b = makePoissonTrace(twoFunctions(), {kSecond, kSecond},
                                     10 * kMinute, 3, "p");
    ASSERT_EQ(a.invocations().size(), b.invocations().size());
    for (std::size_t i = 0; i < a.invocations().size(); ++i)
        EXPECT_EQ(a.invocations()[i], b.invocations()[i]);
}

TEST(PoissonTrace, GapsAreExponentialIsh)
{
    // The squared coefficient of variation of exponential gaps is 1;
    // periodic gaps would give ~0.
    const Trace t = makePoissonTrace(
        {makeFunction(0, "f", 64, fromMillis(100), fromMillis(100))},
        {kSecond}, 2 * kHour, 4, "p");
    const auto& inv = t.invocations();
    ASSERT_GT(inv.size(), 1'000u);
    double mean = 0, sq = 0;
    std::vector<double> gaps;
    for (std::size_t i = 1; i < inv.size(); ++i)
        gaps.push_back(toSeconds(inv[i].arrival_us -
                                 inv[i - 1].arrival_us));
    for (double g : gaps)
        mean += g;
    mean /= static_cast<double>(gaps.size());
    for (double g : gaps)
        sq += (g - mean) * (g - mean);
    const double cv2 =
        sq / static_cast<double>(gaps.size() - 1) / (mean * mean);
    EXPECT_NEAR(cv2, 1.0, 0.15);
}

TEST(PoissonTrace, EmptyDuration)
{
    const Trace t = makePoissonTrace(twoFunctions(), {kSecond, kSecond},
                                     0, 1, "p");
    EXPECT_TRUE(t.invocations().empty());
}

}  // namespace
}  // namespace faascache

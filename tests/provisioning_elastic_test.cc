#include "provisioning/elastic_simulation.h"

#include <gtest/gtest.h>

#include "core/policy_factory.h"
#include "trace/azure_model.h"

namespace faascache {
namespace {

Trace
diurnalWorkload()
{
    // A mild workload whose warm working set (~13 GB of unique
    // functions) fits comfortably in the static 10,000 MB allocation at
    // off-peak intensity — the regime of the paper's Figure 9.
    AzureModelConfig config;
    config.seed = 17;
    config.num_functions = 80;
    config.duration_us = 3 * kHour;
    config.iat_median_sec = 30.0;
    config.max_rate_per_sec = 2.0;
    config.warm_median_ms = 100.0;
    config.warm_sigma = 0.8;
    config.mem_median_mb = 128.0;
    config.mem_sigma = 0.6;
    config.mem_min_mb = 64;
    config.mem_max_mb = 512;
    config.diurnal = true;
    config.diurnal_peak_to_mean = 2.0;
    config.diurnal_period_us = 3 * kHour;  // one cycle over the trace
    return generateAzureTrace(config);
}

ControllerConfig
controllerConfig()
{
    ControllerConfig c;
    c.target_miss_speed = 1.0;
    c.arrival_smoothing_alpha = 0.5;
    c.min_size_mb = 1024;
    c.max_size_mb = 32 * 1024;
    return c;
}

TEST(ElasticSimulation, TimelineCoversTrace)
{
    const Trace t = diurnalWorkload();
    ElasticConfig elastic;
    elastic.initial_size_mb = 10'000;
    const ElasticResult r = runElasticSimulation(
        t, makePolicy(PolicyKind::GreedyDual), controllerConfig(), elastic);
    ASSERT_FALSE(r.timeline.empty());
    // Roughly one sample per 10-minute period over 3 hours.
    EXPECT_GE(r.timeline.size(), 15u);
    for (std::size_t i = 1; i < r.timeline.size(); ++i)
        EXPECT_GT(r.timeline[i].time_us, r.timeline[i - 1].time_us);
}

TEST(ElasticSimulation, SizesStayWithinClamp)
{
    const Trace t = diurnalWorkload();
    ElasticConfig elastic;
    elastic.initial_size_mb = 10'000;
    const ControllerConfig cc = controllerConfig();
    const ElasticResult r = runElasticSimulation(
        t, makePolicy(PolicyKind::GreedyDual), cc, elastic);
    for (const auto& sample : r.timeline) {
        EXPECT_GE(sample.cache_size_mb, cc.min_size_mb);
        EXPECT_LE(sample.cache_size_mb, cc.max_size_mb);
    }
}

TEST(ElasticSimulation, ReducesAverageSizeVersusStatic)
{
    // The headline claim of §7.3: dynamic scaling cuts the average
    // provisioned size versus a conservative static allocation while
    // tracking the miss-speed target.
    const Trace t = diurnalWorkload();
    ElasticConfig elastic;
    elastic.initial_size_mb = 10'000;
    const ElasticResult r = runElasticSimulation(
        t, makePolicy(PolicyKind::GreedyDual), controllerConfig(), elastic);
    // Paper: >30% reduction in average server size; assert a
    // conservative 15% here to keep the test robust across tunings.
    EXPECT_LT(r.averageSizeMb(), 0.85 * elastic.initial_size_mb);
}

TEST(ElasticSimulation, ServesWholeTrace)
{
    const Trace t = diurnalWorkload();
    ElasticConfig elastic;
    elastic.initial_size_mb = 10'000;
    const ElasticResult r = runElasticSimulation(
        t, makePolicy(PolicyKind::GreedyDual), controllerConfig(), elastic);
    EXPECT_EQ(r.sim.total(),
              static_cast<std::int64_t>(t.invocations().size()));
}

TEST(ElasticSimulation, OnlineCurveRefreshStillTracks)
{
    // Drift handling (§5.2): rebuilding the hit-ratio curve from the
    // observed stream must not break the controller — the run completes
    // and still saves memory versus static provisioning.
    const Trace t = diurnalWorkload();
    ElasticConfig elastic;
    elastic.initial_size_mb = 10'000;
    elastic.curve_refresh_period_us = 30 * kMinute;
    elastic.online_sample_rate = 0.5;
    const ElasticResult r = runElasticSimulation(
        t, makePolicy(PolicyKind::GreedyDual), controllerConfig(), elastic);
    EXPECT_EQ(r.sim.total(),
              static_cast<std::int64_t>(t.invocations().size()));
    EXPECT_LT(r.averageSizeMb(), elastic.initial_size_mb);
}

TEST(ElasticSimulation, OnlineRefreshDiffersFromStaticCurve)
{
    const Trace t = diurnalWorkload();
    ElasticConfig static_curve;
    static_curve.initial_size_mb = 10'000;
    ElasticConfig online = static_curve;
    online.curve_refresh_period_us = 20 * kMinute;
    online.online_sample_rate = 0.25;
    const ElasticResult a = runElasticSimulation(
        t, makePolicy(PolicyKind::GreedyDual), controllerConfig(),
        static_curve);
    const ElasticResult b = runElasticSimulation(
        t, makePolicy(PolicyKind::GreedyDual), controllerConfig(), online);
    // The refreshed curve changes at least one sizing decision.
    bool differs = false;
    for (std::size_t i = 0;
         i < std::min(a.timeline.size(), b.timeline.size()); ++i) {
        if (a.timeline[i].cache_size_mb != b.timeline[i].cache_size_mb)
            differs = true;
    }
    EXPECT_TRUE(differs);
}

TEST(ElasticSimulation, CapacityLossGrowsPoolDuringWindow)
{
    const Trace t = diurnalWorkload();
    ElasticConfig plain;
    plain.initial_size_mb = 10'000;
    ElasticConfig degraded = plain;
    // Half the fleet is gone for the middle hour of the trace.
    degraded.capacity_loss.push_back({kHour, 2 * kHour, 0.5});

    const ElasticResult a = runElasticSimulation(
        t, makePolicy(PolicyKind::GreedyDual), controllerConfig(), plain);
    const ElasticResult b = runElasticSimulation(
        t, makePolicy(PolicyKind::GreedyDual), controllerConfig(),
        degraded);

    ASSERT_EQ(a.timeline.size(), b.timeline.size());
    bool boosted = false;
    int in_window = 0;
    for (std::size_t i = 0; i < a.timeline.size(); ++i) {
        const ElasticSample& pa = a.timeline[i];
        const ElasticSample& pb = b.timeline[i];
        if (pb.time_us >= kHour && pb.time_us < 2 * kHour) {
            EXPECT_DOUBLE_EQ(pb.available_fraction, 0.5);
            ++in_window;
            if (pb.cache_size_mb > pa.cache_size_mb + 1e-9)
                boosted = true;
        } else {
            EXPECT_DOUBLE_EQ(pb.available_fraction, 1.0);
        }
    }
    ASSERT_GT(in_window, 0);
    // At some point during the loss the surviving capacity was asked
    // for more memory than the healthy-fleet run at the same instant.
    EXPECT_TRUE(boosted);
}

TEST(ElasticSimulation, EmptyCapacityLossIsNeutral)
{
    const Trace t = diurnalWorkload();
    ElasticConfig elastic;
    elastic.initial_size_mb = 10'000;
    const ElasticResult a = runElasticSimulation(
        t, makePolicy(PolicyKind::GreedyDual), controllerConfig(),
        elastic);
    const ElasticResult b = runElasticSimulation(
        t, makePolicy(PolicyKind::GreedyDual), controllerConfig(),
        elastic);
    ASSERT_EQ(a.timeline.size(), b.timeline.size());
    for (std::size_t i = 0; i < a.timeline.size(); ++i) {
        EXPECT_DOUBLE_EQ(a.timeline[i].cache_size_mb,
                         b.timeline[i].cache_size_mb);
        EXPECT_DOUBLE_EQ(a.timeline[i].available_fraction, 1.0);
    }
}

TEST(ElasticResult, AverageAndPeakHelpers)
{
    ElasticResult r;
    r.timeline = {
        {0, 1'000.0, 0, 0, 0},
        {10, 2'000.0, 0, 0, 0},
        {20, 2'000.0, 0, 0, 0},
    };
    EXPECT_DOUBLE_EQ(r.peakSizeMb(), 2'000.0);
    EXPECT_NEAR(r.averageSizeMb(), (1'000.0 * 10 + 2'000.0 * 10) / 20.0,
                1e-9);
}

TEST(ElasticResult, EmptyTimelineSafe)
{
    ElasticResult r;
    EXPECT_EQ(r.averageSizeMb(), 0.0);
    EXPECT_EQ(r.peakSizeMb(), 0.0);
}

}  // namespace
}  // namespace faascache

/**
 * @file
 * Unit and property tests of the shared discrete-event engine core
 * (engine/event_engine.h): (time, lane, seq) ordering, the
 * lane-then-FIFO same-timestamp property under randomized event mixes,
 * cancellation handles, heap reserve()/clear(), the cooperative
 * cancellation hook, SimClock, and PeriodicSchedule.
 */
#include "engine/event_engine.h"

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "engine/periodic_schedule.h"
#include "util/cancellation.h"
#include "util/rng.h"

namespace faascache {
namespace {

enum class TestKind
{
    A,
    B,
    Fault,
};

using Core = EventCore<TestKind>;

TEST(EventCore, OrdersByTime)
{
    Core q;
    q.schedule(30, TestKind::A, 3);
    q.schedule(10, TestKind::A, 1);
    q.schedule(20, TestKind::B, 2);
    EXPECT_EQ(q.pop().payload, 1u);
    EXPECT_EQ(q.pop().payload, 2u);
    EXPECT_EQ(q.pop().payload, 3u);
    EXPECT_TRUE(q.empty());
}

TEST(EventCore, FifoWithinSameTimestampAndLane)
{
    Core q;
    for (std::uint64_t i = 0; i < 10; ++i)
        q.schedule(100, TestKind::A, i);
    for (std::uint64_t i = 0; i < 10; ++i)
        EXPECT_EQ(q.pop().payload, i);
}

TEST(EventCore, FailureLaneDeliversAfterNormalAtSameTimestamp)
{
    Core q;
    // Scheduled first, but the Failure lane loses every same-time tie.
    q.scheduleFailure(50, TestKind::Fault, 99);
    q.schedule(50, TestKind::A, 1);
    q.schedule(50, TestKind::B, 2);
    EXPECT_EQ(q.pop().payload, 1u);
    EXPECT_EQ(q.pop().payload, 2u);
    const auto fault = q.pop();
    EXPECT_EQ(fault.payload, 99u);
    EXPECT_EQ(fault.lane, EventLane::Failure);
}

TEST(EventCore, FailureLaneStillOrdersByTimeFirst)
{
    Core q;
    q.scheduleFailure(10, TestKind::Fault, 1);
    q.schedule(20, TestKind::A, 2);
    // An earlier Failure-lane event precedes a later Normal one.
    EXPECT_EQ(q.pop().payload, 1u);
    EXPECT_EQ(q.pop().payload, 2u);
}

TEST(EventCore, NextTimePeeksAndSizeCounts)
{
    Core q;
    q.schedule(42, TestKind::A);
    EXPECT_EQ(q.nextTime(), 42);
    EXPECT_EQ(q.size(), 1u);
    EXPECT_FALSE(q.empty());
}

TEST(EventCore, KindAndPayloadsPreserved)
{
    Core q;
    q.schedule(5, TestKind::B, 777, 42);
    const auto e = q.pop();
    EXPECT_EQ(e.kind, TestKind::B);
    EXPECT_EQ(e.payload, 777u);
    EXPECT_EQ(e.payload2, 42u);
    EXPECT_EQ(e.time_us, 5);
    EXPECT_EQ(e.lane, EventLane::Normal);
}

TEST(EventCore, InterleavedScheduleAndPop)
{
    Core q;
    q.schedule(10, TestKind::A, 1);
    q.schedule(20, TestKind::A, 2);
    EXPECT_EQ(q.pop().payload, 1u);
    q.schedule(15, TestKind::A, 3);
    EXPECT_EQ(q.pop().payload, 3u);
    EXPECT_EQ(q.pop().payload, 2u);
}

// The engine-wide determinism property: ANY mix of same-timestamp
// events dequeues lane-first, then FIFO within the lane — for
// randomized interleavings of schedule order, lanes, and timestamps.
TEST(EventCore, PropertyRandomSameTimestampMixesDequeueLaneThenFifo)
{
    Rng rng(20210617);
    for (int round = 0; round < 200; ++round) {
        Core q;
        struct Expect
        {
            TimeUs time_us;
            EventLane lane;
            std::uint64_t seq;  // schedule order = FIFO rank
            std::uint64_t payload;
        };
        std::vector<Expect> scheduled;
        const int events = 2 + static_cast<int>(rng.uniformInt(64));
        // A handful of distinct timestamps so collisions are common.
        const int distinct_times = 1 + static_cast<int>(rng.uniformInt(4));
        for (int i = 0; i < events; ++i) {
            const TimeUs t =
                static_cast<TimeUs>(rng.uniformInt(distinct_times)) * 10;
            const bool failure = rng.uniformInt(3) == 0;
            const auto payload = static_cast<std::uint64_t>(i);
            if (failure)
                q.scheduleFailure(t, TestKind::Fault, payload);
            else
                q.schedule(t, TestKind::A, payload);
            scheduled.push_back(
                {t, failure ? EventLane::Failure : EventLane::Normal,
                 static_cast<std::uint64_t>(i), payload});
        }
        // The specified order: stable sort by (time, lane), which keeps
        // schedule order (FIFO) within each (time, lane) bucket.
        std::stable_sort(scheduled.begin(), scheduled.end(),
                         [](const Expect& a, const Expect& b) {
                             if (a.time_us != b.time_us)
                                 return a.time_us < b.time_us;
                             return a.lane < b.lane;
                         });
        for (const Expect& want : scheduled) {
            ASSERT_FALSE(q.empty());
            const auto got = q.pop();
            ASSERT_EQ(got.time_us, want.time_us)
                << "round " << round;
            ASSERT_EQ(got.lane, want.lane) << "round " << round;
            ASSERT_EQ(got.payload, want.payload) << "round " << round;
        }
        EXPECT_TRUE(q.empty());
    }
}

TEST(EventCore, CancelRemovesPendingEvent)
{
    Core q;
    q.schedule(10, TestKind::A, 1);
    const EventHandle h = q.schedule(20, TestKind::A, 2);
    q.schedule(30, TestKind::A, 3);
    EXPECT_TRUE(q.cancel(h));
    EXPECT_EQ(q.size(), 2u);
    EXPECT_EQ(q.pop().payload, 1u);
    EXPECT_EQ(q.pop().payload, 3u);
    EXPECT_TRUE(q.empty());
}

TEST(EventCore, CancelHeadKeepsQueueStateExact)
{
    Core q;
    const EventHandle h = q.schedule(10, TestKind::A, 1);
    q.schedule(20, TestKind::A, 2);
    EXPECT_TRUE(q.cancel(h));
    // The cancelled head is discarded eagerly: the next event is live.
    EXPECT_EQ(q.size(), 1u);
    EXPECT_EQ(q.nextTime(), 20);
    EXPECT_EQ(q.pop().payload, 2u);
}

TEST(EventCore, CancelIsSingleShotAndRejectsDeliveredOrBogusHandles)
{
    Core q;
    const EventHandle h1 = q.schedule(10, TestKind::A, 1);
    const EventHandle h2 = q.schedule(20, TestKind::A, 2);
    EXPECT_FALSE(q.cancel(EventHandle{}));       // never scheduled
    EXPECT_FALSE(q.cancel(EventHandle{999}));    // unknown seq
    EXPECT_EQ(q.pop().payload, 1u);
    EXPECT_FALSE(q.cancel(h1));                  // already delivered
    EXPECT_TRUE(q.cancel(h2));
    EXPECT_FALSE(q.cancel(h2));                  // already cancelled
    EXPECT_TRUE(q.empty());
}

TEST(EventCore, CancelAllPendingEmptiesQueue)
{
    Core q;
    std::vector<EventHandle> handles;
    for (std::uint64_t i = 0; i < 8; ++i)
        handles.push_back(q.schedule(100 + i, TestKind::A, i));
    for (const EventHandle& h : handles)
        EXPECT_TRUE(q.cancel(h));
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.size(), 0u);
}

TEST(EventCore, ReserveAvoidsMidRunReallocation)
{
    Core q;
    q.reserve(1000);
    const std::size_t reserved = q.capacity();
    EXPECT_GE(reserved, 1000u);
    for (std::uint64_t i = 0; i < 1000; ++i)
        q.schedule(i, TestKind::A, i);
    EXPECT_EQ(q.capacity(), reserved);
}

TEST(EventCore, ClearDropsStaleEventsAndResetsSequencing)
{
    Core q;
    q.schedule(10, TestKind::A, 1);
    const EventHandle h = q.schedule(20, TestKind::A, 2);
    q.cancel(h);
    q.clear();
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.size(), 0u);
    // Sequencing restarts: a fresh run's first event gets seq 0 again,
    // so per-run FIFO order never depends on previous runs.
    q.schedule(5, TestKind::B, 7);
    const auto e = q.pop();
    EXPECT_EQ(e.seq, 0u);
    EXPECT_EQ(e.payload, 7u);
}

TEST(EventCore, ClearKeepsReservedCapacity)
{
    Core q;
    q.reserve(256);
    const std::size_t reserved = q.capacity();
    for (std::uint64_t i = 0; i < 200; ++i)
        q.schedule(i, TestKind::A, i);
    q.clear();
    EXPECT_EQ(q.capacity(), reserved);
}

TEST(EventCore, BoundCancellationTokenThrowsOnPop)
{
    Core q;
    CancellationToken token;
    q.bindCancellation(&token);
    q.schedule(10, TestKind::A, 1);
    EXPECT_EQ(q.pop().payload, 1u);  // not yet cancelled: normal pop
    q.schedule(20, TestKind::A, 2);
    token.cancel(CancelReason::Signal);
    EXPECT_THROW(q.pop(), CancelledError);
    // The event is still pending; unbinding resumes delivery.
    q.bindCancellation(nullptr);
    EXPECT_EQ(q.pop().payload, 2u);
}

TEST(SimClock, AdvancesMonotonicallyAndResets)
{
    SimClock clock;
    EXPECT_EQ(clock.now(), 0);
    clock.advanceTo(10);
    clock.advanceTo(10);  // same instant is fine
    clock.advanceTo(25);
    EXPECT_EQ(clock.now(), 25);
    clock.reset();
    EXPECT_EQ(clock.now(), 0);
    clock.reset(5);
    EXPECT_EQ(clock.now(), 5);
}

TEST(PeriodicSchedule, DisabledScheduleNeverFires)
{
    PeriodicSchedule schedule;  // default: disabled
    EXPECT_FALSE(schedule.enabled());
    int fired = 0;
    schedule.catchUp(1'000'000, [&](TimeUs) { ++fired; });
    EXPECT_EQ(fired, 0);

    PeriodicSchedule zero(0, 0);
    EXPECT_FALSE(zero.enabled());
    zero.catchUp(1'000'000, [&](TimeUs) { ++fired; });
    EXPECT_EQ(fired, 0);
}

TEST(PeriodicSchedule, CatchUpFiresEveryDueTickWithItsOwnDueTime)
{
    PeriodicSchedule schedule(0, 10);
    std::vector<TimeUs> fired;
    schedule.catchUp(35, [&](TimeUs due) { fired.push_back(due); });
    EXPECT_EQ(fired, (std::vector<TimeUs>{0, 10, 20, 30}));
    EXPECT_EQ(schedule.nextDue(), 40);
    // Catching up to a time before the next due tick fires nothing.
    schedule.catchUp(39, [&](TimeUs due) { fired.push_back(due); });
    EXPECT_EQ(fired.size(), 4u);
    schedule.catchUp(40, [&](TimeUs due) { fired.push_back(due); });
    EXPECT_EQ(fired.back(), 40);
}

TEST(PeriodicSchedule, FirstDueOffsetIsHonored)
{
    // HRC refresh style: first due a full interval in.
    PeriodicSchedule schedule(50, 50);
    std::vector<TimeUs> fired;
    schedule.catchUp(49, [&](TimeUs due) { fired.push_back(due); });
    EXPECT_TRUE(fired.empty());
    schedule.catchUp(130, [&](TimeUs due) { fired.push_back(due); });
    EXPECT_EQ(fired, (std::vector<TimeUs>{50, 100}));
}

TEST(PeriodicSchedule, TickConsumesExactlyOne)
{
    PeriodicSchedule schedule(600, 600);
    EXPECT_EQ(schedule.tick(), 600);
    EXPECT_EQ(schedule.tick(), 1200);
    EXPECT_EQ(schedule.nextDue(), 1800);
    EXPECT_TRUE(schedule.due(1800));
    EXPECT_FALSE(schedule.due(1799));
}

TEST(EventLaneName, NamesAreStable)
{
    EXPECT_STREQ(eventLaneName(EventLane::Normal), "normal");
    EXPECT_STREQ(eventLaneName(EventLane::Failure), "failure");
}

TEST(EventCoreBatch, EmptyBatchIsNoOp)
{
    Core q;
    q.scheduleBatch({});
    EXPECT_TRUE(q.empty());
    q.schedule(5, TestKind::A, 1);
    q.scheduleBatch({});
    EXPECT_EQ(q.size(), 1u);
    EXPECT_EQ(q.pop().payload, 1u);
}

TEST(EventCoreBatch, AssignsSequenceNumbersInArrayOrder)
{
    // Three same-timestamp items: FIFO among themselves, and a later
    // schedule() continues the same sequence (pops after them).
    Core q;
    std::vector<EventBatchItem<TestKind>> items;
    for (std::uint64_t i = 0; i < 3; ++i)
        items.push_back(EventBatchItem<TestKind>{10, TestKind::A, i, 0});
    q.scheduleBatch(items);
    q.schedule(10, TestKind::B, 99);
    EXPECT_EQ(q.pop().payload, 0u);
    EXPECT_EQ(q.pop().payload, 1u);
    EXPECT_EQ(q.pop().payload, 2u);
    EXPECT_EQ(q.pop().payload, 99u);
}

TEST(EventCoreBatch, FailureLaneBatchDeliversAfterNormal)
{
    Core q;
    std::vector<EventBatchItem<TestKind>> faults;
    faults.push_back(EventBatchItem<TestKind>{10, TestKind::Fault, 7, 0});
    q.scheduleBatch(faults, EventLane::Failure);
    q.schedule(10, TestKind::A, 1);
    EXPECT_EQ(q.pop().payload, 1u);
    const auto fault = q.pop();
    EXPECT_EQ(fault.payload, 7u);
    EXPECT_EQ(fault.lane, EventLane::Failure);
}

/**
 * Property: a batch admission pops in exactly the order the same items
 * would have popped had they been schedule()d one by one — across
 * small batches into a large heap (per-item sift path) and large
 * batches into a small heap (Floyd rebuild path), interleaved with
 * pops and further singles.
 */
TEST(EventCoreBatch, PropertyBatchPopOrderMatchesIndividualSchedules)
{
    Rng rng(0xBA7C4u);
    for (int round = 0; round < 40; ++round) {
        Core batched;
        Core individual;
        std::uint64_t payload = 0;
        // Alternate phases: a run of singles, then a batch (sized to
        // hit both the sift and rebuild branches), then drain a few.
        for (int phase = 0; phase < 6; ++phase) {
            const std::size_t singles = rng.uniformInt(20);
            for (std::size_t i = 0; i < singles; ++i) {
                const TimeUs t = rng.uniformInt(50);
                const auto lane = rng.uniformInt(4) == 0
                    ? EventLane::Failure
                    : EventLane::Normal;
                batched.schedule(t, TestKind::A, payload, 0, lane);
                individual.schedule(t, TestKind::A, payload, 0, lane);
                ++payload;
            }
            std::vector<EventBatchItem<TestKind>> items;
            const std::size_t batch = rng.uniformInt(60);
            for (std::size_t i = 0; i < batch; ++i) {
                items.push_back(EventBatchItem<TestKind>{
                    rng.uniformInt(50), TestKind::B, payload, 0});
                ++payload;
            }
            batched.scheduleBatch(items);
            for (const auto& item : items)
                individual.schedule(item.time_us, item.kind, item.payload);
            const std::size_t pops =
                rng.uniformInt(batched.size() + 1);
            for (std::size_t i = 0; i < pops; ++i) {
                const auto a = batched.pop();
                const auto b = individual.pop();
                ASSERT_EQ(a.payload, b.payload);
                ASSERT_EQ(a.time_us, b.time_us);
                ASSERT_EQ(a.lane, b.lane);
                ASSERT_EQ(a.seq, b.seq);
            }
        }
        ASSERT_EQ(batched.size(), individual.size());
        while (!batched.empty())
            ASSERT_EQ(batched.pop().payload, individual.pop().payload);
    }
}

}  // namespace
}  // namespace faascache

#include "analysis/fenwick.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace faascache {
namespace {

TEST(Fenwick, EmptyTreeTotalZero)
{
    FenwickTree tree(0);
    EXPECT_DOUBLE_EQ(tree.totalSum(), 0.0);
}

TEST(Fenwick, SingleElement)
{
    FenwickTree tree(1);
    tree.add(0, 5.0);
    EXPECT_DOUBLE_EQ(tree.prefixSum(0), 5.0);
    EXPECT_DOUBLE_EQ(tree.get(0), 5.0);
}

TEST(Fenwick, PrefixSums)
{
    FenwickTree tree(5);
    for (std::size_t i = 0; i < 5; ++i)
        tree.add(i, static_cast<double>(i + 1));  // 1 2 3 4 5
    EXPECT_DOUBLE_EQ(tree.prefixSum(0), 1.0);
    EXPECT_DOUBLE_EQ(tree.prefixSum(2), 6.0);
    EXPECT_DOUBLE_EQ(tree.prefixSum(4), 15.0);
}

TEST(Fenwick, RangeSums)
{
    FenwickTree tree(5);
    for (std::size_t i = 0; i < 5; ++i)
        tree.add(i, static_cast<double>(i + 1));
    EXPECT_DOUBLE_EQ(tree.rangeSum(1, 3), 9.0);
    EXPECT_DOUBLE_EQ(tree.rangeSum(0, 4), 15.0);
    EXPECT_DOUBLE_EQ(tree.rangeSum(2, 2), 3.0);
    EXPECT_DOUBLE_EQ(tree.rangeSum(3, 1), 0.0);  // empty range
}

TEST(Fenwick, SetOverwrites)
{
    FenwickTree tree(3);
    tree.set(1, 10.0);
    tree.set(1, 4.0);
    EXPECT_DOUBLE_EQ(tree.get(1), 4.0);
    EXPECT_DOUBLE_EQ(tree.totalSum(), 4.0);
}

TEST(Fenwick, MatchesNaiveOnRandomOperations)
{
    const std::size_t n = 200;
    FenwickTree tree(n);
    std::vector<double> shadow(n, 0.0);
    Rng rng(5);
    for (int op = 0; op < 2'000; ++op) {
        const auto i = static_cast<std::size_t>(rng.uniformInt(n));
        if (rng.uniform() < 0.5) {
            const double delta = rng.uniform(-10, 10);
            tree.add(i, delta);
            shadow[i] += delta;
        } else {
            const double value = rng.uniform(0, 10);
            tree.set(i, value);
            shadow[i] = value;
        }
        const auto lo = static_cast<std::size_t>(rng.uniformInt(n));
        const auto hi = static_cast<std::size_t>(rng.uniformInt(n));
        double naive = 0.0;
        for (std::size_t j = std::min(lo, hi); j <= std::max(lo, hi); ++j)
            naive += shadow[j];
        EXPECT_NEAR(tree.rangeSum(std::min(lo, hi), std::max(lo, hi)),
                    naive, 1e-6);
    }
}

}  // namespace
}  // namespace faascache

#include "core/size_norm.h"

#include <gtest/gtest.h>

#include <cmath>

namespace faascache {
namespace {

const ResourceVector kServer{48.0, 48.0 * 1024.0, 100.0};

TEST(SizeNorm, MemoryOnlyIgnoresOtherDimensions)
{
    const ResourceVector a{1.0, 256.0, 0.0};
    const ResourceVector b{32.0, 256.0, 90.0};
    EXPECT_DOUBLE_EQ(scalarSize(a, kServer, SizeNorm::MemoryOnly),
                     scalarSize(b, kServer, SizeNorm::MemoryOnly));
    EXPECT_DOUBLE_EQ(scalarSize(a, kServer, SizeNorm::MemoryOnly), 256.0);
}

TEST(SizeNorm, MagnitudeIsEuclidean)
{
    const ResourceVector d{3.0, 4.0, 0.0};
    EXPECT_DOUBLE_EQ(scalarSize(d, kServer, SizeNorm::Magnitude), 5.0);
}

TEST(SizeNorm, NormalizedSumMatchesFormula)
{
    const ResourceVector d{24.0, 24.0 * 1024.0, 50.0};
    // Half of each server dimension: 0.5 + 0.5 + 0.5.
    EXPECT_NEAR(scalarSize(d, kServer, SizeNorm::NormalizedSum), 1.5,
                1e-12);
}

TEST(SizeNorm, NormalizedSumSkipsZeroServerDimensions)
{
    const ResourceVector server{48.0, 48.0 * 1024.0, 0.0};
    const ResourceVector d{48.0, 0.0, 1'000.0};
    EXPECT_NEAR(scalarSize(d, server, SizeNorm::NormalizedSum), 1.0,
                1e-12);
}

TEST(SizeNorm, CosineDiscountsAlignedContainers)
{
    // A demand proportional to the server vector packs perfectly and
    // should look "smaller" than an equally heavy skewed demand.
    const ResourceVector aligned{4.8, 4.8 * 1024.0, 10.0};
    const ResourceVector skewed{0.0, 2.0 * 4.8 * 1024.0, 0.0};
    const double s_aligned =
        scalarSize(aligned, kServer, SizeNorm::CosineWeighted);
    const double s_aligned_sum =
        scalarSize(aligned, kServer, SizeNorm::NormalizedSum);
    EXPECT_LT(s_aligned, s_aligned_sum);
    EXPECT_GT(s_aligned, 0.0);
    (void)skewed;
}

TEST(SizeNorm, AllNormsStrictlyPositive)
{
    const ResourceVector tiny{0.0, 0.0, 0.0};
    for (SizeNorm norm :
         {SizeNorm::MemoryOnly, SizeNorm::Magnitude,
          SizeNorm::NormalizedSum, SizeNorm::CosineWeighted}) {
        EXPECT_GT(scalarSize(tiny, kServer, norm), 0.0);
    }
}

TEST(SizeNorm, ResourceVectorOfFunction)
{
    FunctionSpec spec =
        makeFunction(0, "f", 256, fromMillis(100), fromMillis(100));
    spec.cpu_units = 2.0;
    spec.io_units = 5.0;
    const ResourceVector v = resourceVectorOf(spec);
    EXPECT_DOUBLE_EQ(v.cpu, 2.0);
    EXPECT_DOUBLE_EQ(v.mem_mb, 256.0);
    EXPECT_DOUBLE_EQ(v.io, 5.0);
}

}  // namespace
}  // namespace faascache

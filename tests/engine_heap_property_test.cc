// Property test for the engine's flat 4-ary heap: against a classic
// binary-heap reference (std::priority_queue with the same comparator),
// random (time, lane, seq) streams must pop in the identical order.
// Because the ordering key is a *total* order — seq is unique — the
// sorted pop sequence is the only legal one regardless of heap arity,
// so any disagreement here means a broken sift primitive, not a benign
// layout difference. Interleaved schedule/pop and lazy cancellation are
// exercised too, since those are the operations the sweep runs hammer.
#include <gtest/gtest.h>

#include <cstdint>
#include <queue>
#include <unordered_set>
#include <vector>

#include "engine/event_engine.h"
#include "util/rng.h"

namespace faascache {
namespace {

enum class TestKind : std::uint8_t
{
    Tick,
};

using Event = EngineEvent<TestKind>;

/** The engine's (time, lane, seq) order, spelled out independently so a
 *  comparator bug in the engine cannot hide in the reference. */
struct PopsLater
{
    bool operator()(const Event& a, const Event& b) const
    {
        if (a.time_us != b.time_us)
            return a.time_us > b.time_us;
        if (a.lane != b.lane)
            return a.lane > b.lane;
        return a.seq > b.seq;
    }
};

/** Binary-heap reference model mirroring EventCore's visible API. */
class BinaryHeapReference
{
  public:
    std::uint64_t schedule(TimeUs time_us, EventLane lane,
                           std::uint64_t payload)
    {
        Event event;
        event.time_us = time_us;
        event.lane = lane;
        event.seq = next_seq_++;
        event.kind = TestKind::Tick;
        event.payload = payload;
        heap_.push(event);
        pending_.insert(event.seq);
        return event.seq;
    }

    bool cancel(std::uint64_t seq)
    {
        if (pending_.count(seq) == 0)
            return false;
        pending_.erase(seq);
        cancelled_.insert(seq);
        return true;
    }

    bool empty()
    {
        skipCancelled();
        return heap_.empty();
    }

    Event pop()
    {
        skipCancelled();
        Event event = heap_.top();
        heap_.pop();
        pending_.erase(event.seq);
        return event;
    }

  private:
    void skipCancelled()
    {
        while (!heap_.empty() && cancelled_.count(heap_.top().seq) != 0) {
            cancelled_.erase(heap_.top().seq);
            heap_.pop();
        }
    }

    std::priority_queue<Event, std::vector<Event>, PopsLater> heap_;
    std::unordered_set<std::uint64_t> pending_;
    std::unordered_set<std::uint64_t> cancelled_;
    std::uint64_t next_seq_ = 0;
};

void
expectSameEvent(const Event& got, const Event& want, std::size_t step,
                std::uint64_t trial_seed)
{
    ASSERT_EQ(got.time_us, want.time_us)
        << "pop " << step << " of trial seed " << trial_seed;
    ASSERT_EQ(got.lane, want.lane)
        << "pop " << step << " of trial seed " << trial_seed;
    ASSERT_EQ(got.seq, want.seq)
        << "pop " << step << " of trial seed " << trial_seed;
    ASSERT_EQ(got.payload, want.payload)
        << "pop " << step << " of trial seed " << trial_seed;
}

TEST(HeapProperty, BulkScheduleThenDrainMatchesBinaryHeap)
{
    for (std::uint64_t trial = 0; trial < 25; ++trial) {
        const std::uint64_t seed = 0xabcd0000 + trial;
        Rng rng(seed);
        EventCore<TestKind> core;
        BinaryHeapReference reference;

        // A narrow time range forces heavy timestamp collisions, so the
        // lane and FIFO tie-breaks carry most of the ordering.
        const std::size_t n = 200 + rng.uniformInt(800);
        for (std::size_t i = 0; i < n; ++i) {
            const auto time_us = static_cast<TimeUs>(rng.uniformInt(50));
            const EventLane lane = rng.uniformInt(4) == 0
                ? EventLane::Failure
                : EventLane::Normal;
            core.schedule(time_us, TestKind::Tick, /*payload=*/i, 0, lane);
            reference.schedule(time_us, lane, i);
        }

        std::size_t step = 0;
        while (!core.empty()) {
            ASSERT_FALSE(reference.empty());
            expectSameEvent(core.pop(), reference.pop(), step++, seed);
        }
        EXPECT_TRUE(reference.empty());
    }
}

TEST(HeapProperty, InterleavedScheduleAndPopMatchesBinaryHeap)
{
    for (std::uint64_t trial = 0; trial < 25; ++trial) {
        const std::uint64_t seed = 0xbeef0000 + trial;
        Rng rng(seed);
        EventCore<TestKind> core;
        BinaryHeapReference reference;

        std::size_t step = 0;
        std::uint64_t payload = 0;
        for (std::size_t op = 0; op < 2000; ++op) {
            if (core.empty() || rng.uniformInt(3) != 0) {
                const auto time_us =
                    static_cast<TimeUs>(rng.uniformInt(100));
                const EventLane lane = rng.uniformInt(5) == 0
                    ? EventLane::Failure
                    : EventLane::Normal;
                core.schedule(time_us, TestKind::Tick, payload, 0, lane);
                reference.schedule(time_us, lane, payload);
                ++payload;
            } else {
                ASSERT_FALSE(reference.empty());
                expectSameEvent(core.pop(), reference.pop(), step++, seed);
            }
        }
        while (!core.empty()) {
            ASSERT_FALSE(reference.empty());
            expectSameEvent(core.pop(), reference.pop(), step++, seed);
        }
        EXPECT_TRUE(reference.empty());
    }
}

TEST(HeapProperty, LazyCancellationMatchesBinaryHeap)
{
    for (std::uint64_t trial = 0; trial < 10; ++trial) {
        const std::uint64_t seed = 0xfeed0000 + trial;
        Rng rng(seed);
        EventCore<TestKind> core;
        BinaryHeapReference reference;

        std::vector<EventHandle> handles;
        for (std::size_t i = 0; i < 500; ++i) {
            const auto time_us = static_cast<TimeUs>(rng.uniformInt(40));
            const EventLane lane = rng.uniformInt(6) == 0
                ? EventLane::Failure
                : EventLane::Normal;
            handles.push_back(
                core.schedule(time_us, TestKind::Tick, i, 0, lane));
            reference.schedule(time_us, lane, i);
        }
        // Cancel a random third of the pending events (some picks repeat
        // — the second cancel of a seq must report false in both).
        for (std::size_t i = 0; i < handles.size() / 3; ++i) {
            const std::size_t pick = rng.uniformInt(handles.size());
            const bool core_cancelled = core.cancel(handles[pick]);
            const bool reference_cancelled =
                reference.cancel(handles[pick].seq);
            EXPECT_EQ(core_cancelled, reference_cancelled)
                << "cancel of seq " << handles[pick].seq << " in trial "
                << seed;
        }

        std::size_t step = 0;
        while (!core.empty()) {
            ASSERT_FALSE(reference.empty());
            expectSameEvent(core.pop(), reference.pop(), step++, seed);
        }
        EXPECT_TRUE(reference.empty());
    }
}

TEST(HeapProperty, DrainIsGloballySorted)
{
    // Independent of any reference: the popped stream must be strictly
    // increasing in (time, lane, seq) — the total order guarantees it.
    Rng rng(0x50f7);
    EventCore<TestKind> core;
    for (std::size_t i = 0; i < 3000; ++i) {
        core.schedule(static_cast<TimeUs>(rng.uniformInt(64)),
                      TestKind::Tick, i, 0,
                      rng.uniformInt(2) == 0 ? EventLane::Failure
                                             : EventLane::Normal);
    }
    PopsLater later;
    Event previous = core.pop();
    while (!core.empty()) {
        const Event next = core.pop();
        // previous must not pop later than next, and ties are impossible.
        EXPECT_TRUE(later(next, previous));
        previous = next;
    }
}

}  // namespace
}  // namespace faascache

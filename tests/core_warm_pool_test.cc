#include "core/warm_pool_policy.h"

#include <gtest/gtest.h>

#include "core/container_pool.h"
#include "core/greedy_dual.h"
#include "sim/simulator.h"

namespace faascache {
namespace {

FunctionSpec
fn(FunctionId id, MemMb mem = 100)
{
    return makeFunction(id, "fn" + std::to_string(id), mem, fromMillis(50),
                        fromMillis(500));
}

Container&
addIdle(ContainerPool& pool, const FunctionSpec& spec, TimeUs used_at)
{
    Container& c = pool.add(spec, used_at);
    c.startInvocation(used_at, used_at + spec.warm_us);
    c.finishInvocation();
    return c;
}

TEST(WarmPool, KeepsUpToBudgetPerFunction)
{
    ContainerPool pool(10'000);
    WarmPoolPolicy policy(2);
    addIdle(pool, fn(0), 0);
    addIdle(pool, fn(0), kSecond);
    EXPECT_TRUE(policy.expiredContainers(pool, 2 * kSecond).empty());
}

TEST(WarmPool, ReleasesSurplusOldestFirst)
{
    ContainerPool pool(10'000);
    WarmPoolPolicy policy(2);
    Container& oldest = addIdle(pool, fn(0), 0);
    addIdle(pool, fn(0), kSecond);
    addIdle(pool, fn(0), 2 * kSecond);
    const auto surplus = policy.expiredContainers(pool, 3 * kSecond);
    ASSERT_EQ(surplus.size(), 1u);
    EXPECT_EQ(surplus[0], oldest.id());
}

TEST(WarmPool, BudgetIsPerFunction)
{
    ContainerPool pool(10'000);
    WarmPoolPolicy policy(1);
    addIdle(pool, fn(0), 0);
    addIdle(pool, fn(1), 0);
    EXPECT_TRUE(policy.expiredContainers(pool, kSecond).empty());
    addIdle(pool, fn(0), kSecond);
    EXPECT_EQ(policy.expiredContainers(pool, 2 * kSecond).size(), 1u);
}

TEST(WarmPool, BusyContainersDoNotCountAgainstBudget)
{
    ContainerPool pool(10'000);
    WarmPoolPolicy policy(1);
    Container& busy = pool.add(fn(0), 0);
    busy.startInvocation(0, kHour);
    addIdle(pool, fn(0), kSecond);
    EXPECT_TRUE(policy.expiredContainers(pool, 2 * kSecond).empty());
}

TEST(WarmPool, PressureEvictionIsLru)
{
    ContainerPool pool(10'000);
    WarmPoolPolicy policy(4);
    Container& oldest = addIdle(pool, fn(0), 0);
    addIdle(pool, fn(1), kSecond);
    const auto victims = policy.selectVictims(pool, 50, 2 * kSecond);
    ASSERT_EQ(victims.size(), 1u);
    EXPECT_EQ(victims[0], oldest.id());
}

TEST(WarmPool, SimulatorRunCapsResidentContainers)
{
    // Concurrency bursts create extra containers; the pool policy trims
    // them back to the budget between bursts.
    Trace t("t");
    t.addFunction(fn(0));
    // Burst of 4 concurrent invocations (cold takes 550 ms).
    for (int i = 0; i < 4; ++i)
        t.addInvocation(0, i * fromMillis(10));
    // A later invocation after the burst settles.
    t.addInvocation(0, kMinute);
    SimulatorConfig config;
    config.memory_mb = 10'000;
    config.memory_sample_interval_us = 0;
    Simulator sim(t, std::make_unique<WarmPoolPolicy>(1), config);
    while (!sim.done())
        sim.step();
    // After the final arrival, surplus containers were expired.
    EXPECT_LE(sim.pool().size(), 2u);
    EXPECT_GT(sim.result().expirations, 0);
}

TEST(WarmPool, NameAndBudgetAccessors)
{
    WarmPoolPolicy policy(3);
    EXPECT_EQ(policy.name(), "POOL");
    EXPECT_EQ(policy.poolSize(), 3u);
}

}  // namespace
}  // namespace faascache

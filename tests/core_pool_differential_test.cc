// Differential test for the ContainerPool storage backends: the slab
// arena (the default) must be *observably identical* to the original
// hash-map pool, which is kept as a reference oracle (PoolBackend::
// ReferenceMap). Every keep-alive policy is replayed over the paper's
// three sampling recipes (REPRESENTATIVE / RARE / RANDOM) through both
// backends and the full SimResult — counters, per-function outcomes,
// and the memory timeline — must compare bit-identical. Any divergence
// (container-id assignment, warm-container choice, eviction-candidate
// enumeration order) shows up here as a hard mismatch.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/policy_factory.h"
#include "platform/experiment.h"
#include "sim/simulator.h"
#include "sim/sweep_runner.h"
#include "trace/azure_model.h"
#include "trace/samplers.h"

namespace faascache {
namespace {

/** Miniature bench-style population (fixed derived seeds, small scale
 *  so the full policy x trace x backend matrix stays fast). */
const Trace&
population()
{
    static const Trace kPopulation = [] {
        AzureModelConfig config;
        config.seed = deriveCellSeed(2021, 1);
        config.num_functions = 150;
        config.duration_us = 30 * kMinute;
        config.iat_median_sec = 30.0;
        config.max_rate_per_sec = 2.0;
        config.mem_median_mb = 64.0;
        config.mem_sigma = 0.7;
        config.mem_max_mb = 512.0;
        config.name = "pool-differential-population";
        return generateAzureTrace(config);
    }();
    return kPopulation;
}

/** The three Table-2 sampling recipes, at miniature scale. */
const std::vector<Trace>&
sampledTraces()
{
    static const std::vector<Trace> kTraces = [] {
        std::vector<Trace> traces;
        traces.push_back(sampleRepresentative(population(), 60,
                                              deriveCellSeed(2021, 2)));
        traces.push_back(sampleRare(population(), 80,
                                    deriveCellSeed(2021, 3)));
        traces.push_back(sampleRandom(population(), 40,
                                      deriveCellSeed(2021, 4)));
        return traces;
    }();
    return kTraces;
}

SimResult
runWith(const Trace& trace, PolicyKind kind, PoolBackend backend,
        MemMb memory_mb)
{
    SimulatorConfig config;
    config.memory_mb = memory_mb;
    config.pool_backend = backend;
    // Exercise the sampling, prewarm, and background-reclaim paths too:
    // they enumerate the pool in ways that could expose backend order.
    config.memory_sample_interval_us = kMinute;
    config.enable_prewarm = true;
    config.background_reclaim_interval_us = 2 * kMinute;
    config.background_free_target_mb = memory_mb / 8;
    return simulateTrace(trace, makePolicy(kind), config);
}

TEST(PoolDifferential, EveryPolicyEveryTraceBitIdentical)
{
    // Small enough memory that evictions actually happen, large enough
    // that warm starts dominate (both paths exercised).
    const MemMb memory_mb = 1024.0;
    for (const Trace& trace : sampledTraces()) {
        for (PolicyKind kind : allPolicyKinds()) {
            const SimResult slab =
                runWith(trace, kind, PoolBackend::Slab, memory_mb);
            const SimResult reference =
                runWith(trace, kind, PoolBackend::ReferenceMap, memory_mb);
            EXPECT_TRUE(slab == reference)
                << "backend divergence: trace=" << trace.name()
                << " policy=" << policyKindName(kind)
                << " slab(warm=" << slab.warm_starts
                << ",cold=" << slab.cold_starts
                << ",evict=" << slab.evictions
                << ",expire=" << slab.expirations
                << ",prewarm=" << slab.prewarms
                << ") reference(warm=" << reference.warm_starts
                << ",cold=" << reference.cold_starts
                << ",evict=" << reference.evictions
                << ",expire=" << reference.expirations
                << ",prewarm=" << reference.prewarms << ")";
        }
    }
}

TEST(PoolDifferential, MemoryPressureSweepBitIdentical)
{
    // Tight memory forces constant eviction churn — the regime where
    // victim-selection enumeration order matters most.
    const Trace& trace = sampledTraces()[0];
    for (MemMb memory_mb : {256.0, 512.0, 2048.0}) {
        for (PolicyKind kind :
             {PolicyKind::GreedyDual, PolicyKind::Hist, PolicyKind::Lru}) {
            const SimResult slab =
                runWith(trace, kind, PoolBackend::Slab, memory_mb);
            const SimResult reference =
                runWith(trace, kind, PoolBackend::ReferenceMap, memory_mb);
            EXPECT_TRUE(slab == reference)
                << "backend divergence at " << memory_mb << " MB, policy "
                << policyKindName(kind);
        }
    }
}

TEST(PoolDifferential, PlatformServerBitIdentical)
{
    // The platform server drives the pool through the additional
    // release-finished / crash-flush paths; compare the full
    // PlatformResult across backends for the heavier policies.
    const Trace& trace = sampledTraces()[0];
    for (PolicyKind kind : {PolicyKind::GreedyDual, PolicyKind::Hist,
                            PolicyKind::Ttl}) {
        ServerConfig config;
        config.cores = 2;
        config.memory_mb = 768.0;
        config.pool_backend = PoolBackend::Slab;
        const PlatformResult slab = runPlatform(trace, kind, config);
        config.pool_backend = PoolBackend::ReferenceMap;
        const PlatformResult reference = runPlatform(trace, kind, config);

        EXPECT_EQ(slab.warm_starts, reference.warm_starts);
        EXPECT_EQ(slab.cold_starts, reference.cold_starts);
        EXPECT_EQ(slab.dropped_queue_full, reference.dropped_queue_full);
        EXPECT_EQ(slab.dropped_timeout, reference.dropped_timeout);
        EXPECT_EQ(slab.dropped_oversize, reference.dropped_oversize);
        EXPECT_EQ(slab.evictions, reference.evictions);
        EXPECT_EQ(slab.expirations, reference.expirations);
        EXPECT_EQ(slab.prewarms, reference.prewarms);
        EXPECT_EQ(slab.per_function, reference.per_function);
        ASSERT_EQ(slab.latencies_sec.size(),
                  reference.latencies_sec.size());
        for (std::size_t i = 0; i < slab.latencies_sec.size(); ++i)
            EXPECT_EQ(slab.latencies_sec[i], reference.latencies_sec[i]);
    }
}

}  // namespace
}  // namespace faascache

// Golden fixture for the fig8 platform path: a miniature fixed-seed
// version of bench/fig8_server_load.cc (OpenWhisk-style TTL vs
// FaasCache Greedy-Dual on the skewed-frequency FunctionBench workload,
// overloaded single invoker) compared field-for-field against a
// checked-in fixture — so platform-path regressions are caught by
// ctest, not only by the perf harness. The grid also rides as a
// dense-vs-reference differential: both PlatformBackends must produce
// byte-identical results before either is compared to the fixture.
//
// Regenerate with:
//   FAASCACHE_REGEN_GOLDEN=1 ./platform_golden_fig8_test
// which rewrites tests/golden/fig8_mini.expected in the source tree.
#include <gtest/gtest.h>

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/policy_factory.h"
#include "platform/experiment.h"
#include "platform/experiment_checkpoint.h"
#include "platform/load_generator.h"
#include "platform/server.h"

#ifndef FAASCACHE_GOLDEN_DIR
#error "FAASCACHE_GOLDEN_DIR must point at tests/golden"
#endif

namespace faascache {
namespace {

const char* const kFixturePath =
    FAASCACHE_GOLDEN_DIR "/fig8_mini.expected";

/** The fig8 workload at test scale: same generator and seed as the
 *  bench, a quarter of its duration. */
const Trace&
fig8MiniTrace()
{
    static const Trace kTrace = skewedFrequencyWorkload(15 * kMinute);
    return kTrace;
}

/** The fig8 server: overloaded single invoker, cold starts burn two
 *  CPU slots (the paper's load-amplification regime). */
ServerConfig
fig8Server(PlatformBackend backend)
{
    ServerConfig server;
    server.cores = 8;
    server.memory_mb = 1000;
    server.cold_start_cpu_slots = 2;
    server.platform_backend = backend;
    return server;
}

std::vector<PlatformCell>
fig8Grid(PlatformBackend backend)
{
    PolicyConfig openwhisk;
    openwhisk.ttl_victim_order = TtlVictimOrder::OldestCreated;
    std::vector<PlatformCell> cells;
    cells.push_back(PlatformCell{&fig8MiniTrace(), PolicyKind::Ttl,
                                 fig8Server(backend), openwhisk, "ow"});
    cells.push_back(PlatformCell{&fig8MiniTrace(), PolicyKind::GreedyDual,
                                 fig8Server(backend), PolicyConfig{},
                                 "fc"});
    return cells;
}

/** One fixture line per cell: integers exactly, the latency mean as
 *  hexfloat so the comparison is bit-exact across platforms. */
std::string
formatLine(const PlatformResult& r)
{
    char buffer[512];
    std::snprintf(
        buffer, sizeof buffer,
        "%s,%" PRId64 ",%" PRId64 ",%" PRId64 ",%" PRId64 ",%" PRId64
        ",%" PRId64 ",%" PRId64 ",%" PRId64 ",%" PRId64 ",%zu,%a",
        r.policy_name.c_str(), r.warm_starts, r.cold_starts,
        r.dropped_queue_full, r.dropped_timeout, r.dropped_oversize,
        r.evictions, r.expirations, r.prewarms, r.last_congested_us,
        r.latencies_sec.size(), r.meanLatencySec());
    return buffer;
}

std::vector<std::string>
linesFor(PlatformBackend backend, std::size_t jobs)
{
    std::vector<std::string> lines;
    for (const PlatformResult& r :
         runPlatformSweep(fig8Grid(backend), jobs))
        lines.push_back(formatLine(r));
    return lines;
}

std::vector<std::string>
fixtureLines()
{
    std::vector<std::string> lines;
    std::FILE* file = std::fopen(kFixturePath, "r");
    if (file == nullptr)
        return lines;
    char buffer[512];
    while (std::fgets(buffer, sizeof buffer, file) != nullptr) {
        std::string line(buffer);
        while (!line.empty() &&
               (line.back() == '\n' || line.back() == '\r'))
            line.pop_back();
        if (!line.empty() && line.front() != '#')
            lines.push_back(line);
    }
    std::fclose(file);
    return lines;
}

bool
regenRequested()
{
    const char* regen = std::getenv("FAASCACHE_REGEN_GOLDEN");
    return regen != nullptr && regen[0] != '\0' && regen[0] != '0';
}

TEST(GoldenFig8, BackendsAgreeBeforeFixtureComparison)
{
    const auto dense = runPlatformSweep(fig8Grid(PlatformBackend::Dense), 2);
    const auto reference =
        runPlatformSweep(fig8Grid(PlatformBackend::Reference), 2);
    ASSERT_EQ(dense.size(), reference.size());
    for (std::size_t i = 0; i < dense.size(); ++i) {
        EXPECT_EQ(encodePlatformCheckpointPayload("cell", dense[i]),
                  encodePlatformCheckpointPayload("cell", reference[i]))
            << "fig8 cell " << i << " diverged between backends";
    }
}

TEST(GoldenFig8, MiniGridMatchesCheckedInFixture)
{
    const std::vector<std::string> current =
        linesFor(PlatformBackend::Dense, 2);

    if (regenRequested()) {
        std::FILE* file = std::fopen(kFixturePath, "w");
        ASSERT_NE(file, nullptr) << "cannot write " << kFixturePath;
        std::fputs(
            "# Golden fig8-mini platform grid (OpenWhisk TTL vs "
            "FaasCache GD,\n"
            "# skewed-frequency FunctionBench workload, 8 cores / "
            "1000 MB / 15 min).\n"
            "# Columns: policy,warm,cold,dropped_queue_full,"
            "dropped_timeout,\n"
            "#   dropped_oversize,evictions,expirations,prewarms,"
            "last_congested_us,\n"
            "#   n_latencies,mean_latency_sec(hexfloat)\n"
            "# Regenerate: FAASCACHE_REGEN_GOLDEN=1 "
            "./platform_golden_fig8_test\n",
            file);
        for (const std::string& line : current)
            std::fprintf(file, "%s\n", line.c_str());
        std::fclose(file);
        GTEST_SKIP() << "fixture regenerated at " << kFixturePath;
    }

    const std::vector<std::string> expected = fixtureLines();
    ASSERT_FALSE(expected.empty())
        << "missing fixture " << kFixturePath
        << " — run FAASCACHE_REGEN_GOLDEN=1 ./platform_golden_fig8_test";
    ASSERT_EQ(expected.size(), current.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
        EXPECT_EQ(expected[i], current[i])
            << "fig8 golden cell " << i << " diverged — platform "
            << "semantics changed; if intentional, regenerate the "
            << "fixture and call the change out in review";
    }
}

TEST(GoldenFig8, GridIsNonTrivialAndJobsInvariant)
{
    // The overloaded regime must keep covering real behaviour: warm
    // and cold starts, drops, and congestion all present somewhere —
    // and none of it may depend on the worker count.
    std::int64_t warm = 0, cold = 0, dropped = 0;
    TimeUs congested = 0;
    for (const PlatformResult& r :
         runPlatformSweep(fig8Grid(PlatformBackend::Dense), 1)) {
        warm += r.warm_starts;
        cold += r.cold_starts;
        dropped += r.dropped();
        congested = std::max(congested, r.last_congested_us);
    }
    EXPECT_GT(warm, 0);
    EXPECT_GT(cold, 0);
    EXPECT_GT(dropped, 0);
    EXPECT_GT(congested, 0);
    EXPECT_EQ(linesFor(PlatformBackend::Dense, 1),
              linesFor(PlatformBackend::Dense, 8));
}

}  // namespace
}  // namespace faascache

#include "core/policy_factory.h"

#include <gtest/gtest.h>

#include "core/ttl_policy.h"

namespace faascache {
namespace {

TEST(PolicyFactory, AllKindsListedOnce)
{
    const auto& kinds = allPolicyKinds();
    EXPECT_EQ(kinds.size(), 7u);
}

TEST(PolicyFactory, NamesMatchPaperLegend)
{
    EXPECT_EQ(policyKindName(PolicyKind::GreedyDual), "GD");
    EXPECT_EQ(policyKindName(PolicyKind::Ttl), "TTL");
    EXPECT_EQ(policyKindName(PolicyKind::Lru), "LRU");
    EXPECT_EQ(policyKindName(PolicyKind::Hist), "HIST");
    EXPECT_EQ(policyKindName(PolicyKind::Size), "SIZE");
    EXPECT_EQ(policyKindName(PolicyKind::Landlord), "LND");
    EXPECT_EQ(policyKindName(PolicyKind::Lfu), "FREQ");
}

TEST(PolicyFactory, RoundTripNames)
{
    for (PolicyKind kind : allPolicyKinds())
        EXPECT_EQ(policyKindFromName(policyKindName(kind)), kind);
}

TEST(PolicyFactory, UnknownNameThrows)
{
    EXPECT_THROW(policyKindFromName("NOPE"), std::invalid_argument);
    EXPECT_THROW(policyKindFromName(""), std::invalid_argument);
}

TEST(PolicyFactory, ConfigPropagatesToTtl)
{
    PolicyConfig config;
    config.ttl_us = 3 * kMinute;
    auto policy = makePolicy(PolicyKind::Ttl, config);
    auto* ttl = dynamic_cast<TtlPolicy*>(policy.get());
    ASSERT_NE(ttl, nullptr);
    EXPECT_EQ(ttl->ttl(), 3 * kMinute);
}

TEST(PolicyFactory, FreshInstancesAreIndependent)
{
    auto a = makePolicy(PolicyKind::GreedyDual);
    auto b = makePolicy(PolicyKind::GreedyDual);
    const FunctionSpec f =
        makeFunction(0, "f", 100, fromMillis(100), fromMillis(100));
    a->onInvocationArrival(f, 0);
    EXPECT_EQ(a->stats().of(0).frequency, 1);
    EXPECT_EQ(b->stats().of(0).frequency, 0);
}

}  // namespace
}  // namespace faascache

/**
 * @file
 * Overload-control subsystem tests: the admission controller, brownout
 * governor, retry budget, and circuit breaker in isolation, plus their
 * wiring through Server and the cluster front end.
 */
#include <gtest/gtest.h>

#include "core/policy_factory.h"
#include "platform/cluster.h"
#include "platform/overload/admission_controller.h"
#include "platform/overload/brownout.h"
#include "platform/overload/circuit_breaker.h"
#include "platform/overload/retry_budget.h"
#include "platform/load_generator.h"
#include "platform/server.h"

namespace faascache {
namespace {

FunctionSpec
fn(FunctionId id, MemMb mem, double warm_sec = 1.0, double init_sec = 1.0)
{
    return makeFunction(id, "fn" + std::to_string(id), mem,
                        fromSeconds(warm_sec), fromSeconds(init_sec));
}

// ---------------------------------------------------------------------
// AdmissionController

TEST(AdmissionController, DisabledNeverSheds)
{
    AdmissionConfig cfg;  // enabled = false
    AdmissionController ac(cfg);
    for (int i = 0; i < 100; ++i)
        ac.onDequeue(kHour, static_cast<TimeUs>(i) * kSecond);
    EXPECT_FALSE(ac.violating());
    EXPECT_FALSE(ac.shouldShed(kHour));
    EXPECT_EQ(ac.violations(), 0);
}

TEST(AdmissionController, ViolationRequiresFullInterval)
{
    AdmissionConfig cfg;
    cfg.enabled = true;
    cfg.target_delay_us = kSecond;
    cfg.interval_us = 10 * kSecond;
    AdmissionController ac(cfg);

    // First above-target sojourn only arms the detector.
    ac.onDequeue(2 * kSecond, 0);
    EXPECT_FALSE(ac.violating());
    EXPECT_FALSE(ac.shouldShed(0));

    // Still within the grace interval: not yet a standing queue.
    ac.onDequeue(2 * kSecond, 5 * kSecond);
    EXPECT_FALSE(ac.violating());

    // A full interval above target: violation begins, shed immediately.
    ac.onDequeue(2 * kSecond, 10 * kSecond);
    EXPECT_TRUE(ac.violating());
    EXPECT_EQ(ac.violations(), 1);
    EXPECT_TRUE(ac.shouldShed(10 * kSecond));
}

TEST(AdmissionController, RecoveryClearsViolationInstantly)
{
    AdmissionConfig cfg;
    cfg.enabled = true;
    cfg.target_delay_us = kSecond;
    cfg.interval_us = 10 * kSecond;
    AdmissionController ac(cfg);
    ac.onDequeue(2 * kSecond, 0);
    ac.onDequeue(2 * kSecond, 10 * kSecond);
    ASSERT_TRUE(ac.violating());

    // One below-target sojourn ends the episode.
    ac.onDequeue(0, 11 * kSecond);
    EXPECT_FALSE(ac.violating());
    EXPECT_FALSE(ac.shouldShed(11 * kSecond));
    EXPECT_EQ(ac.violations(), 1);
}

TEST(AdmissionController, ShedScheduleEscalates)
{
    AdmissionConfig cfg;
    cfg.enabled = true;
    cfg.target_delay_us = kSecond;
    cfg.interval_us = 4 * kSecond;
    AdmissionController ac(cfg);
    ac.onDequeue(2 * kSecond, 0);
    ac.onDequeue(2 * kSecond, 4 * kSecond);
    ASSERT_TRUE(ac.violating());

    // k-th shed comes interval/sqrt(k) after the previous: the schedule
    // tightens as the violation persists.
    TimeUs now = 4 * kSecond;
    EXPECT_TRUE(ac.shouldShed(now));              // shed #1, gap 4 s
    EXPECT_FALSE(ac.shouldShed(now + kSecond));   // too soon
    now += 4 * kSecond;
    EXPECT_TRUE(ac.shouldShed(now));              // shed #2, gap 4/sqrt(2)
    EXPECT_FALSE(ac.shouldShed(now + 2 * kSecond));
    EXPECT_TRUE(ac.shouldShed(now + 2'828'427));  // 4 s / sqrt(2)
}

// ---------------------------------------------------------------------
// BrownoutGovernor

TEST(BrownoutGovernor, DisabledNeverEngages)
{
    BrownoutConfig cfg;  // enabled = false
    BrownoutGovernor gov(cfg);
    gov.noteMemoryPressure(kSecond);
    gov.update(/*admission_violating=*/true, 2 * kSecond);
    EXPECT_FALSE(gov.active());
    EXPECT_EQ(gov.windows(), 0);
    EXPECT_EQ(gov.activeUs(kHour), 0);
}

TEST(BrownoutGovernor, MemoryPressureEngagesAndHoldsMinDuration)
{
    BrownoutConfig cfg;
    cfg.enabled = true;
    cfg.min_duration_us = 5 * kSecond;
    BrownoutGovernor gov(cfg);

    gov.noteMemoryPressure(10 * kSecond);
    EXPECT_TRUE(gov.active());
    EXPECT_EQ(gov.windows(), 1);

    // Within the hold: stays engaged even with no trigger.
    gov.update(false, 12 * kSecond);
    EXPECT_TRUE(gov.active());

    // Hold elapsed and the pressure trigger expired: released, and the
    // window's duration is charged.
    gov.update(false, 15 * kSecond);
    EXPECT_FALSE(gov.active());
    EXPECT_EQ(gov.activeUs(kHour), 5 * kSecond);
}

TEST(BrownoutGovernor, AdmissionViolationEngagesAndReleases)
{
    BrownoutConfig cfg;
    cfg.enabled = true;
    cfg.min_duration_us = kSecond;
    BrownoutGovernor gov(cfg);

    gov.update(/*admission_violating=*/true, 10 * kSecond);
    EXPECT_TRUE(gov.active());
    // Violation persists: the window stays open past min duration.
    gov.update(true, 20 * kSecond);
    EXPECT_TRUE(gov.active());
    gov.update(false, 30 * kSecond);
    EXPECT_FALSE(gov.active());
    EXPECT_EQ(gov.windows(), 1);
    EXPECT_EQ(gov.activeUs(kHour), 20 * kSecond);
}

TEST(BrownoutGovernor, OpenWindowChargedToHorizon)
{
    BrownoutConfig cfg;
    cfg.enabled = true;
    cfg.min_duration_us = kSecond;
    BrownoutGovernor gov(cfg);
    gov.noteMemoryPressure(10 * kSecond);
    // Never released: activeUs charges the open tail up to the horizon.
    EXPECT_EQ(gov.activeUs(60 * kSecond), 50 * kSecond);
}

// ---------------------------------------------------------------------
// RetryBudget

TEST(RetryBudget, DisabledAlwaysSpends)
{
    RetryBudget budget{RetryBudgetConfig{}};  // ratio 0 = disabled
    for (int i = 0; i < 1000; ++i)
        EXPECT_TRUE(budget.trySpend());
}

TEST(RetryBudget, StartsWithBurstAndExhausts)
{
    RetryBudgetConfig cfg;
    cfg.ratio = 0.1;
    cfg.burst = 3.0;
    RetryBudget budget(cfg);
    EXPECT_TRUE(budget.trySpend());
    EXPECT_TRUE(budget.trySpend());
    EXPECT_TRUE(budget.trySpend());
    EXPECT_FALSE(budget.trySpend());  // bucket empty
}

TEST(RetryBudget, FreshArrivalsRefillAtRatio)
{
    RetryBudgetConfig cfg;
    cfg.ratio = 0.25;
    cfg.burst = 2.0;
    RetryBudget budget(cfg);
    ASSERT_TRUE(budget.trySpend());
    ASSERT_TRUE(budget.trySpend());
    ASSERT_FALSE(budget.trySpend());
    // Four fresh arrivals earn exactly one retry token (0.25 each).
    for (int i = 0; i < 4; ++i)
        budget.onFreshArrival();
    EXPECT_TRUE(budget.trySpend());
    EXPECT_FALSE(budget.trySpend());
}

TEST(RetryBudget, BurstCapsBanking)
{
    RetryBudgetConfig cfg;
    cfg.ratio = 1.0;
    cfg.burst = 2.0;
    RetryBudget budget(cfg);
    for (int i = 0; i < 100; ++i)
        budget.onFreshArrival();
    EXPECT_EQ(budget.tokens(), 2.0);
}

// ---------------------------------------------------------------------
// CircuitBreaker

TEST(CircuitBreaker, DisabledAlwaysAllows)
{
    CircuitBreaker breaker{CircuitBreakerConfig{}};  // threshold 0
    for (int i = 0; i < 100; ++i)
        breaker.recordFailure(static_cast<TimeUs>(i));
    EXPECT_TRUE(breaker.allowRequest(kSecond));
    EXPECT_EQ(breaker.opens(), 0);
}

TEST(CircuitBreaker, OpensAfterConsecutiveFailures)
{
    CircuitBreakerConfig cfg;
    cfg.failure_threshold = 3;
    cfg.open_duration_us = 5 * kSecond;
    CircuitBreaker breaker(cfg);

    breaker.recordFailure(kSecond);
    breaker.recordFailure(2 * kSecond);
    EXPECT_TRUE(breaker.allowRequest(2 * kSecond));  // still closed
    breaker.recordFailure(3 * kSecond);
    EXPECT_EQ(breaker.state(3 * kSecond), BreakerState::Open);
    EXPECT_FALSE(breaker.allowRequest(4 * kSecond));
    EXPECT_EQ(breaker.opens(), 1);
}

TEST(CircuitBreaker, SuccessResetsConsecutiveCount)
{
    CircuitBreakerConfig cfg;
    cfg.failure_threshold = 3;
    CircuitBreaker breaker(cfg);
    breaker.recordFailure(kSecond);
    breaker.recordFailure(2 * kSecond);
    breaker.recordSuccess(3 * kSecond);  // streak broken
    breaker.recordFailure(4 * kSecond);
    breaker.recordFailure(5 * kSecond);
    EXPECT_EQ(breaker.state(5 * kSecond), BreakerState::Closed);
}

TEST(CircuitBreaker, HalfOpenAdmitsOneProbePerCooldown)
{
    CircuitBreakerConfig cfg;
    cfg.failure_threshold = 1;
    cfg.open_duration_us = 5 * kSecond;
    CircuitBreaker breaker(cfg);
    breaker.recordFailure(0);
    ASSERT_EQ(breaker.state(0), BreakerState::Open);
    EXPECT_FALSE(breaker.allowRequest(kSecond));

    // Cool-down elapsed: exactly one probe per cool-down window.
    EXPECT_EQ(breaker.state(5 * kSecond), BreakerState::HalfOpen);
    EXPECT_TRUE(breaker.allowRequest(5 * kSecond));
    EXPECT_FALSE(breaker.allowRequest(6 * kSecond));
    EXPECT_EQ(breaker.probes(), 1);

    // The probe succeeded: closed again.
    breaker.recordSuccess(6 * kSecond);
    EXPECT_EQ(breaker.state(6 * kSecond), BreakerState::Closed);
    EXPECT_TRUE(breaker.allowRequest(7 * kSecond));
    EXPECT_EQ(breaker.closes(), 1);
}

TEST(CircuitBreaker, FailedProbeReopens)
{
    CircuitBreakerConfig cfg;
    cfg.failure_threshold = 1;
    cfg.open_duration_us = 5 * kSecond;
    CircuitBreaker breaker(cfg);
    breaker.recordFailure(0);
    ASSERT_TRUE(breaker.allowRequest(5 * kSecond));  // probe
    breaker.recordFailure(5 * kSecond + kMillisecond);
    EXPECT_EQ(breaker.state(6 * kSecond), BreakerState::Open);
    EXPECT_FALSE(breaker.allowRequest(6 * kSecond));
    EXPECT_EQ(breaker.opens(), 2);
}

// ---------------------------------------------------------------------
// Server integration

TEST(ServerOverload, DefaultOffLeavesResultsUntouched)
{
    // Enabled-but-never-triggered overload control must be byte-equal
    // to the default-off run: thresholds far above anything the
    // workload can reach.
    const Trace t = skewedFrequencyWorkload(10 * kMinute);
    ServerConfig base;
    base.cores = 8;
    base.memory_mb = 8'000;

    Server off(makePolicy(PolicyKind::GreedyDual), base);
    const PlatformResult r_off = off.run(t);

    ServerConfig lax = base;
    lax.overload.admission.enabled = true;
    lax.overload.admission.target_delay_us = kHour;
    lax.overload.brownout.enabled = true;
    Server on(makePolicy(PolicyKind::GreedyDual), lax);
    const PlatformResult r_on = on.run(t);

    EXPECT_EQ(r_off.warm_starts, r_on.warm_starts);
    EXPECT_EQ(r_off.cold_starts, r_on.cold_starts);
    EXPECT_EQ(r_off.dropped(), r_on.dropped());
    EXPECT_EQ(r_off.latencies_sec, r_on.latencies_sec);
    EXPECT_EQ(r_on.overload, OverloadCounters{});
    EXPECT_EQ(r_off.overload, OverloadCounters{});
}

/** Saturating workload: one core, back-to-back 10 s jobs plus a flood. */
Trace
saturatingTrace()
{
    Trace t("saturate");
    t.addFunction(fn(0, 100, 10.0, 0.0));
    for (int i = 0; i < 60; ++i)
        t.addInvocation(0, static_cast<TimeUs>(i) * kSecond);
    return t;
}

TEST(ServerOverload, AdmissionShedsOnStandingQueue)
{
    ServerConfig cfg;
    cfg.cores = 1;
    cfg.memory_mb = 1'000;
    cfg.queue_timeout_us = kHour;  // timeouts would mask the shedding
    cfg.overload.admission.enabled = true;
    cfg.overload.admission.target_delay_us = 5 * kSecond;
    cfg.overload.admission.interval_us = 10 * kSecond;

    const Trace t = saturatingTrace();
    Server server(makePolicy(PolicyKind::GreedyDual), cfg);
    const PlatformResult r = server.run(t);

    EXPECT_GT(r.overload.admission_shed, 0);
    EXPECT_GT(r.overload.admission_violations, 0);
    // Ledger: every invocation is served, queued-at-end, or shed.
    EXPECT_EQ(r.total(), static_cast<std::int64_t>(t.invocations().size()));
    // The standing queue was detected, so the run ends congested.
    EXPECT_GT(r.last_congested_us, 0);
}

TEST(ServerOverload, BrownoutServesWarmWhileDenyingCold)
{
    // fn0 (200 MB) gets a warm container; fn1 (1000 MB) then occupies
    // all remaining memory for 100 s. fn2 (400 MB) cannot fit even by
    // evicting the idle 200 MB — memory pressure engages brownout.
    // fn0's next arrival is a warm hit and must be served through the
    // brownout; fn3's cold request must be denied.
    Trace t("brownout");
    t.addFunction(fn(0, 200, 1.0, 1.0));
    t.addFunction(fn(1, 1'000, 100.0, 0.0));
    t.addFunction(fn(2, 400, 1.0, 1.0));
    t.addFunction(fn(3, 150, 1.0, 1.0));
    t.addInvocation(0, 0);
    t.addInvocation(1, 10 * kSecond);
    t.addInvocation(2, 20 * kSecond);
    t.addInvocation(0, 21 * kSecond);
    t.addInvocation(3, 22 * kSecond);

    ServerConfig cfg;
    cfg.cores = 8;
    cfg.memory_mb = 1'200;
    cfg.queue_timeout_us = 30 * kSecond;
    cfg.overload.brownout.enabled = true;
    cfg.overload.brownout.min_duration_us = 60 * kSecond;

    Server server(makePolicy(PolicyKind::GreedyDual), cfg);
    const PlatformResult r = server.run(t);

    EXPECT_EQ(r.warm_starts, 1);  // fn0's second arrival, browned out
    EXPECT_GT(r.overload.brownout_denied_cold, 0);
    EXPECT_GE(r.overload.brownout_windows, 1);
    EXPECT_GT(r.overload.brownout_us, 0);
    // fn3 was denied the cold path; fn0 was not.
    EXPECT_GT(r.per_function[3].dropped, 0);
    EXPECT_EQ(r.per_function[0].dropped, 0);
}

TEST(ServerOverload, DeterministicAcrossRuns)
{
    ServerConfig cfg;
    cfg.cores = 1;
    cfg.memory_mb = 1'000;
    cfg.overload.admission.enabled = true;
    cfg.overload.admission.target_delay_us = 2 * kSecond;
    cfg.overload.admission.interval_us = 5 * kSecond;
    cfg.overload.brownout.enabled = true;

    const Trace t = saturatingTrace();
    Server a(makePolicy(PolicyKind::GreedyDual), cfg);
    Server b(makePolicy(PolicyKind::GreedyDual), cfg);
    const PlatformResult ra = a.run(t);
    const PlatformResult rb = b.run(t);
    EXPECT_EQ(ra.latencies_sec, rb.latencies_sec);
    EXPECT_EQ(ra.overload, rb.overload);
    EXPECT_EQ(ra.last_congested_us, rb.last_congested_us);
}

// ---------------------------------------------------------------------
// Cluster integration

ClusterConfig
clusterConfig()
{
    ClusterConfig c;
    c.num_servers = 4;
    c.server.cores = 4;
    c.server.memory_mb = 512;
    c.balancing = LoadBalancing::RoundRobin;
    return c;
}

void
expectConservation(const ClusterResult& r, const Trace& t)
{
    std::int64_t resolved = r.shed_requests + r.failed_requests;
    for (const auto& s : r.servers)
        resolved += s.served() + s.dropped();
    EXPECT_EQ(resolved, static_cast<std::int64_t>(t.invocations().size()));
}

TEST(ClusterOverload, RetryBudgetCapsRetryStorm)
{
    const Trace t = skewedFrequencyWorkload(20 * kMinute);
    ClusterConfig undefended = clusterConfig();
    undefended.faults.crashes.push_back({1, 5 * kMinute, 5 * kMinute});
    undefended.faults.crashes.push_back({1, 12 * kMinute, 5 * kMinute});
    const ClusterResult base =
        runCluster(t, PolicyKind::GreedyDual, undefended);
    ASSERT_GT(base.retries, 0);
    EXPECT_EQ(base.retry_budget_exhausted, 0);

    ClusterConfig defended = undefended;
    defended.failover.retry_budget.ratio = 0.0001;  // ~no refill
    defended.failover.retry_budget.burst = 1.0;
    const ClusterResult capped =
        runCluster(t, PolicyKind::GreedyDual, defended);

    EXPECT_GT(capped.retry_budget_exhausted, 0);
    EXPECT_LT(capped.retries, base.retries);
    expectConservation(capped, t);
}

TEST(ClusterOverload, BreakerOpensUnderSpawnFailureStorm)
{
    const Trace t = skewedFrequencyWorkload(10 * kMinute);
    ClusterConfig c = clusterConfig();
    c.faults.spawn_failure_prob = 1.0;  // every cold spawn fails
    c.faults.spawn_retry_delay_us = kSecond;
    c.server.queue_timeout_us = 10 * kSecond;
    c.failover.breaker.failure_threshold = 5;
    c.failover.breaker.open_duration_us = 30 * kSecond;

    const ClusterResult r = runCluster(t, PolicyKind::GreedyDual, c);
    EXPECT_GT(r.breaker_opens, 0);
    EXPECT_GT(r.breaker_probes, 0);
    expectConservation(r, t);
}

TEST(ClusterOverload, BreakerClosesAfterTransientStorm)
{
    // Intermittent spawn failures interleave failure streaks with
    // successes: breakers that open must close again via a successful
    // probe once the server makes progress.
    const Trace t = skewedFrequencyWorkload(10 * kMinute);
    ClusterConfig c = clusterConfig();
    c.faults.spawn_failure_prob = 0.5;
    c.faults.spawn_retry_delay_us = kSecond;
    c.server.queue_timeout_us = 10 * kSecond;
    c.failover.breaker.failure_threshold = 3;
    c.failover.breaker.open_duration_us = 10 * kSecond;

    const ClusterResult r = runCluster(t, PolicyKind::GreedyDual, c);
    if (r.breaker_opens > 0)
        EXPECT_GT(r.breaker_closes, 0);
    expectConservation(r, t);
}

TEST(ClusterOverload, JitteredRetriesStayDeterministic)
{
    const Trace t = skewedFrequencyWorkload(10 * kMinute);
    ClusterConfig c = clusterConfig();
    c.faults.crashes.push_back({1, 4 * kMinute, kMinute});
    ASSERT_GT(c.failover.backoff_jitter_frac, 0.0);  // on by default

    const ClusterResult a = runCluster(t, PolicyKind::GreedyDual, c);
    const ClusterResult b = runCluster(t, PolicyKind::GreedyDual, c);
    EXPECT_EQ(a.retries, b.retries);
    EXPECT_EQ(a.failed_requests, b.failed_requests);
    ASSERT_EQ(a.servers.size(), b.servers.size());
    for (std::size_t s = 0; s < a.servers.size(); ++s)
        EXPECT_EQ(a.servers[s].latencies_sec, b.servers[s].latencies_sec);
    expectConservation(a, t);

    // Zero jitter is a valid (legacy-equivalent) configuration.
    ClusterConfig sync = c;
    sync.failover.backoff_jitter_frac = 0.0;
    const ClusterResult legacy = runCluster(t, PolicyKind::GreedyDual, sync);
    expectConservation(legacy, t);
}

TEST(ClusterOverload, ServerOverloadKnobsWorkOnBothPaths)
{
    // Server-local admission control must behave identically whether
    // the cluster takes the split fast path (no front-end features) or
    // the fault-aware path (forced by an inert shed mark): the
    // controllers live inside Server.
    Trace t("cluster-saturate");
    t.addFunction(fn(0, 100, 10.0, 0.0));
    for (int i = 0; i < 240; ++i)
        t.addInvocation(0, static_cast<TimeUs>(i) * kSecond / 4);

    ClusterConfig c = clusterConfig();
    c.num_servers = 2;
    c.server.cores = 1;
    c.server.queue_timeout_us = kHour;
    c.server.overload.admission.enabled = true;
    c.server.overload.admission.target_delay_us = 5 * kSecond;
    c.server.overload.admission.interval_us = 10 * kSecond;

    const ClusterResult split = runCluster(t, PolicyKind::GreedyDual, c);
    ClusterConfig forced = c;
    forced.failover.shed_queue_depth = forced.server.queue_capacity;
    const ClusterResult aware = runCluster(t, PolicyKind::GreedyDual, forced);

    EXPECT_GT(split.overload().admission_shed, 0);
    EXPECT_EQ(split.overload(), aware.overload());
    EXPECT_EQ(split.warmStarts(), aware.warmStarts());
    EXPECT_EQ(split.dropped(), aware.dropped());
}

}  // namespace
}  // namespace faascache

// The crash-safety layer of the sweep engine (DESIGN.md §4b): failure
// isolation into per-cell outcomes, watchdog deadlines with bounded
// retry, strict-mode rethrow, grid fingerprints, and checkpoint/resume
// that reproduces an uninterrupted sweep bit-for-bit.
#include "sim/sweep_runner.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/policy_factory.h"
#include "sim/sweep_checkpoint.h"
#include "trace/function_spec.h"

namespace faascache {
namespace {

/** Unique temp path per test; removed on destruction. */
class TempFile
{
  public:
    explicit TempFile(const std::string& tag)
        : path_(std::string(::testing::TempDir()) + "faascache_sweep_" +
                tag + ".ckpt")
    {
        std::remove(path_.c_str());
    }
    ~TempFile() { std::remove(path_.c_str()); }

    const std::string& path() const { return path_; }

  private:
    std::string path_;
};

/** Two functions contending for memory: warm hits, colds, and drops. */
const Trace&
testTrace()
{
    static const Trace kTrace = [] {
        Trace t("report-test");
        t.addFunction(makeFunction(0, "hot", 400, fromSeconds(0.5),
                                   fromSeconds(2.0)));
        t.addFunction(makeFunction(1, "big", 700, fromSeconds(0.5),
                                   fromSeconds(2.0)));
        for (int i = 0; i < 400; ++i)
            t.addInvocation(i % 4 == 3 ? 1 : 0, i * 2 * kSecond);
        return t;
    }();
    return kTrace;
}

std::vector<SweepCell>
smallGrid()
{
    std::vector<SweepCell> cells;
    for (MemMb memory_mb : {500.0, 900.0, 4096.0}) {
        for (PolicyKind kind : {PolicyKind::GreedyDual, PolicyKind::Ttl})
            cells.push_back(makeCell(testTrace(), kind, memory_mb));
    }
    return cells;
}

/** A policy poisoned at construction time (worker-side failure). */
SweepCell
poisonedCell(const std::string& key)
{
    SweepCell cell;
    cell.trace = &testTrace();
    cell.make_policy = []() -> std::unique_ptr<KeepAlivePolicy> {
        throw std::runtime_error("poisoned policy factory");
    };
    cell.key = key;  // explicit: the default key would build the policy
    return cell;
}

/**
 * Burns real wall-clock time on every arrival so the watchdog deadline
 * fires; evicts nothing, which the harness never sees (the deadline
 * cancels through the simulator's per-step checkpoint first).
 */
class SleepyPolicy : public KeepAlivePolicy
{
  public:
    std::string name() const override { return "Sleepy"; }

    void onInvocationArrival(const FunctionSpec& function,
                             TimeUs now) override
    {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        KeepAlivePolicy::onInvocationArrival(function, now);
    }

    std::vector<ContainerId> selectVictims(ContainerPool&, MemMb,
                                           TimeUs) override
    {
        return {};
    }
};

TEST(SweepReport, AllOkGridMatchesStrictRun)
{
    const std::vector<SweepCell> cells = smallGrid();
    const SweepReport report = runSweepReport(cells, 2);
    EXPECT_TRUE(report.completed);
    EXPECT_TRUE(report.allOk());
    EXPECT_EQ(report.restored, 0u);
    const std::vector<SimResult> reference = runSweep(cells, 2);
    ASSERT_EQ(report.cells.size(), reference.size());
    for (std::size_t i = 0; i < reference.size(); ++i) {
        EXPECT_EQ(report.cells[i].attempts, 1);
        EXPECT_FALSE(report.cells[i].restored);
        EXPECT_TRUE(report.cells[i].result == reference[i]);
    }
}

TEST(SweepReport, OnePoisonedCellDoesNotAbortTheSweep)
{
    std::vector<SweepCell> cells = smallGrid();
    cells.insert(cells.begin() + 2, poisonedCell("poisoned"));
    const SweepReport report = runSweepReport(cells, 4);

    EXPECT_TRUE(report.completed);
    EXPECT_FALSE(report.allOk());
    EXPECT_EQ(report.countWithStatus(CellStatus::Failed), 1u);
    EXPECT_EQ(report.countWithStatus(CellStatus::Ok), cells.size() - 1);

    const CellOutcome<SimResult>& bad = report.cells[2];
    EXPECT_EQ(bad.status, CellStatus::Failed);
    EXPECT_EQ(bad.key, "poisoned");
    EXPECT_NE(bad.error.find("poisoned policy factory"),
              std::string::npos);
    EXPECT_EQ(bad.attempts, 1);
    EXPECT_TRUE(static_cast<bool>(bad.exception));

    // The healthy cells are untouched by their neighbour's failure.
    std::vector<SweepCell> healthy = smallGrid();
    const std::vector<SimResult> reference = runSweep(healthy, 2);
    EXPECT_TRUE(report.cells[0].result == reference[0]);
    EXPECT_TRUE(report.cells[3].result == reference[2]);
}

TEST(SweepReport, FailedCellIsRetriedBoundedly)
{
    std::vector<SweepCell> cells = {poisonedCell("poisoned")};
    SweepOptions options;
    options.max_retries = 2;
    const SweepReport report = runSweepReport(cells, 1, options);
    ASSERT_EQ(report.cells.size(), 1u);
    EXPECT_EQ(report.cells[0].status, CellStatus::Failed);
    EXPECT_EQ(report.cells[0].attempts, 3);  // 1 try + 2 retries
}

TEST(SweepReport, StrictModeRethrowsTheOriginalException)
{
    std::vector<SweepCell> cells = smallGrid();
    cells.push_back(poisonedCell("poisoned"));
    SweepOptions options;
    options.strict = true;
    try {
        runSweepReport(cells, 2, options);
        FAIL() << "expected the poisoned cell's exception";
    } catch (const std::runtime_error& e) {
        EXPECT_STREQ(e.what(), "poisoned policy factory");
    }
}

TEST(SweepReport, DeadlineTimesOutWedgedCells)
{
    // ~400 arrivals x 2 ms sleep = ~0.8 s of wall clock per attempt,
    // against a 0.1 s deadline: the watchdog must cancel the attempt
    // through the simulator's cooperative checkpoint.
    SweepCell sleepy;
    sleepy.trace = &testTrace();
    sleepy.make_policy = []() { return std::make_unique<SleepyPolicy>(); };
    sleepy.sim.memory_mb = 4096;
    sleepy.key = "sleepy";
    std::vector<SweepCell> cells = smallGrid();
    cells.push_back(sleepy);

    SweepOptions options;
    options.deadline_s = 0.1;
    options.max_retries = 1;
    const SweepReport report = runSweepReport(cells, 2, options);

    EXPECT_TRUE(report.completed);
    const CellOutcome<SimResult>& timed_out = report.cells.back();
    EXPECT_EQ(timed_out.status, CellStatus::TimedOut);
    EXPECT_EQ(timed_out.attempts, 2);  // deadline applies per attempt
    EXPECT_NE(timed_out.error.find("deadline"), std::string::npos);
    // The fast cells finish well inside the deadline, unharmed.
    EXPECT_EQ(report.countWithStatus(CellStatus::Ok), cells.size() - 1);
}

TEST(SweepReport, PreCancelledSweepStopsWithoutRunningEverything)
{
    CancellationToken cancel;
    cancel.cancel(CancelReason::Signal);
    SweepOptions options;
    options.cancel = &cancel;
    const SweepReport report = runSweepReport(smallGrid(), 1, options);
    EXPECT_FALSE(report.completed);
    // Every cell is either finished or cleanly skipped — never lost.
    for (const CellOutcome<SimResult>& cell : report.cells) {
        EXPECT_TRUE(cell.status == CellStatus::Ok ||
                    cell.status == CellStatus::Skipped)
            << cellStatusName(cell.status);
    }
}

TEST(SweepReport, ValidationNamesTheOffendingCellIndex)
{
    std::vector<SweepCell> cells = smallGrid();
    cells[3].trace = nullptr;
    try {
        runSweepReport(cells, 1);
        FAIL() << "expected invalid_argument";
    } catch (const std::invalid_argument& e) {
        EXPECT_NE(std::string(e.what()).find("cell index 3"),
                  std::string::npos);
    }
    cells = smallGrid();
    cells[1].make_policy = nullptr;
    try {
        runSweepReport(cells, 1);
        FAIL() << "expected invalid_argument";
    } catch (const std::invalid_argument& e) {
        EXPECT_NE(std::string(e.what()).find("cell index 1"),
                  std::string::npos);
    }
}

TEST(SweepKeys, DerivedKeysAreUniqueAndExplicitKeysWin)
{
    std::vector<SweepCell> cells = {
        makeCell(testTrace(), PolicyKind::GreedyDual, 1024),
        makeCell(testTrace(), PolicyKind::GreedyDual, 1024),
        makeCell(testTrace(), PolicyKind::Ttl, 1024),
    };
    cells[2].key = "my-explicit-key";
    const std::vector<std::string> keys = sweepCellKeys(cells);
    ASSERT_EQ(keys.size(), 3u);
    EXPECT_EQ(keys[0], "report-test/GD/1024MB");
    EXPECT_EQ(keys[1], "report-test/GD/1024MB#2");
    EXPECT_EQ(keys[2], "my-explicit-key");
}

TEST(SweepFingerprint, StableForSameGridSensitiveToChanges)
{
    const std::uint64_t base = sweepGridFingerprint(smallGrid());
    EXPECT_EQ(sweepGridFingerprint(smallGrid()), base);

    std::vector<SweepCell> resized = smallGrid();
    resized[0].sim.memory_mb += 1.0;
    EXPECT_NE(sweepGridFingerprint(resized), base);

    std::vector<SweepCell> reseeded = smallGrid();
    reseeded[0].rng_seed = 99;
    EXPECT_NE(sweepGridFingerprint(reseeded), base);

    std::vector<SweepCell> shorter = smallGrid();
    shorter.pop_back();
    EXPECT_NE(sweepGridFingerprint(shorter), base);
}

TEST(SweepResume, InterruptedSweepResumesBitIdentical)
{
    const std::vector<SweepCell> cells = smallGrid();
    TempFile ckpt("resume");

    // Uninterrupted reference run, journaled. jobs=1 makes completion
    // order equal grid order, so "the first two records" below is
    // deterministically cells 0 and 1.
    SweepOptions journal;
    journal.checkpoint_path = ckpt.path();
    const SweepReport reference = runSweepReport(cells, 1, journal);
    ASSERT_TRUE(reference.allOk());

    // Simulate a SIGKILL after two records: keep the header + first two
    // lines and tear the third mid-write.
    std::string bytes;
    {
        std::ifstream in(ckpt.path(), std::ios::binary);
        bytes.assign(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
    }
    std::size_t cut = 0;
    for (int newlines = 0; newlines < 3; ++newlines)
        cut = bytes.find('\n', cut) + 1;
    {
        std::ofstream out(ckpt.path(),
                          std::ios::binary | std::ios::trunc);
        out << bytes.substr(0, cut) << "cell 0123456789abcdef torn";
    }

    SweepOptions resume = journal;
    resume.resume = true;
    const SweepReport resumed = runSweepReport(cells, 2, resume);
    EXPECT_TRUE(resumed.allOk());
    EXPECT_TRUE(resumed.torn_tail);
    EXPECT_EQ(resumed.restored, 2u);
    ASSERT_EQ(resumed.cells.size(), reference.cells.size());
    for (std::size_t i = 0; i < resumed.cells.size(); ++i) {
        // Bitwise SimResult equality: restored or re-run, every cell
        // matches the uninterrupted sweep exactly.
        EXPECT_TRUE(resumed.cells[i].result ==
                    reference.cells[i].result)
            << "cell " << i;
        EXPECT_EQ(resumed.cells[i].restored, i < 2);
    }

    // The repaired journal now covers the full grid and resumes to a
    // fully-restored, zero-work sweep.
    SweepOptions resume_again = resume;
    const SweepReport warm = runSweepReport(cells, 2, resume_again);
    EXPECT_FALSE(warm.torn_tail);
    EXPECT_EQ(warm.restored, cells.size());
    for (std::size_t i = 0; i < warm.cells.size(); ++i) {
        EXPECT_EQ(warm.cells[i].attempts, 0);
        EXPECT_TRUE(warm.cells[i].result == reference.cells[i].result);
    }
}

TEST(SweepResume, RefusesAForeignGridFingerprint)
{
    TempFile ckpt("foreign");
    const std::vector<SweepCell> cells = smallGrid();
    SweepOptions journal;
    journal.checkpoint_path = ckpt.path();
    ASSERT_TRUE(runSweepReport(cells, 2, journal).allOk());

    std::vector<SweepCell> other = smallGrid();
    other[0].sim.memory_mb = 123;  // different grid, same journal
    SweepOptions resume = journal;
    resume.resume = true;
    try {
        runSweepReport(other, 2, resume);
        FAIL() << "expected a fingerprint-mismatch refusal";
    } catch (const std::runtime_error& e) {
        EXPECT_NE(std::string(e.what()).find("refusing to resume"),
                  std::string::npos);
    }
}

TEST(SweepResume, ResumeWithoutPathIsRejected)
{
    SweepOptions options;
    options.resume = true;
    EXPECT_THROW(runSweepReport(smallGrid(), 1, options),
                 std::invalid_argument);
}

TEST(SweepReport, JournalOrderIsCompletionOrderButRestoreIsByKey)
{
    // Journal records land in completion order (non-deterministic under
    // jobs > 1); restore keys them back to grid positions regardless.
    const std::vector<SweepCell> cells = smallGrid();
    TempFile ckpt("order");
    SweepOptions journal;
    journal.checkpoint_path = ckpt.path();
    const SweepReport reference = runSweepReport(cells, 4, journal);
    ASSERT_TRUE(reference.allOk());

    const SweepCheckpointLoad load = loadSweepCheckpoint(ckpt.path());
    EXPECT_EQ(load.records.size(), cells.size());
    EXPECT_EQ(load.fingerprint, sweepGridFingerprint(cells));

    SweepOptions resume = journal;
    resume.resume = true;
    const SweepReport restored = runSweepReport(cells, 1, resume);
    EXPECT_EQ(restored.restored, cells.size());
    for (std::size_t i = 0; i < restored.cells.size(); ++i)
        EXPECT_TRUE(restored.cells[i].result ==
                    reference.cells[i].result);
}

}  // namespace
}  // namespace faascache

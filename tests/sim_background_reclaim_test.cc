// Tests of the kswapd-style background reclaimer (paper §6 future
// work): asynchronous eviction keeps a free-memory reserve so demand
// evictions move off the invocation critical path.
#include <gtest/gtest.h>

#include "core/policy_factory.h"
#include "sim/simulator.h"
#include "trace/azure_model.h"
#include "trace/samplers.h"

namespace faascache {
namespace {

Trace
workload()
{
    AzureModelConfig config;
    config.seed = 3;
    config.num_functions = 200;
    config.duration_us = 30 * kMinute;
    config.iat_median_sec = 20.0;
    config.mem_median_mb = 64.0;
    config.mem_sigma = 0.7;
    config.mem_max_mb = 512.0;
    return generateAzureTrace(config);
}

SimResult
run(const Trace& trace, TimeUs reclaim_interval, MemMb target,
    MemMb memory = 2048)
{
    SimulatorConfig config;
    config.memory_mb = memory;
    config.memory_sample_interval_us = 0;
    config.background_reclaim_interval_us = reclaim_interval;
    config.background_free_target_mb = target;
    return simulateTrace(trace, makePolicy(PolicyKind::GreedyDual), config);
}

TEST(BackgroundReclaim, DisabledByDefault)
{
    const SimResult r = run(workload(), 0, 500);
    EXPECT_EQ(r.background_reclaims, 0);
}

TEST(BackgroundReclaim, ReclaimsWhenEnabled)
{
    const SimResult r = run(workload(), 10 * kSecond, 500);
    EXPECT_GT(r.background_reclaims, 0);
}

TEST(BackgroundReclaim, ReducesCriticalPathEvictionRounds)
{
    const Trace t = workload();
    const SimResult off = run(t, 0, 500);
    const SimResult on = run(t, 10 * kSecond, 500);
    EXPECT_LT(on.eviction_rounds, off.eviction_rounds);
}

TEST(BackgroundReclaim, MaintainsFreeReserve)
{
    // Fill a 1000 MB pool with ten idle 100 MB containers, then leave
    // the server quiet: the reclaimer must evict down to a 500 MB free
    // reserve before the next (late) arrival.
    Trace t("t");
    for (int i = 0; i < 11; ++i) {
        t.addFunction(makeFunction(static_cast<FunctionId>(i),
                                   "fn" + std::to_string(i), 100,
                                   fromMillis(100), fromMillis(100)));
    }
    for (int i = 0; i < 10; ++i)
        t.addInvocation(static_cast<FunctionId>(i), i * kSecond);
    t.addInvocation(10, 2 * kMinute);

    SimulatorConfig config;
    config.memory_mb = 1000;
    config.memory_sample_interval_us = 0;
    config.background_reclaim_interval_us = 5 * kSecond;
    config.background_free_target_mb = 500;
    Simulator sim(t, makePolicy(PolicyKind::GreedyDual), config);
    while (!sim.done())
        sim.step();
    // Reclaims freed 500 MB; the final cold start consumed 100 MB.
    EXPECT_GE(sim.pool().freeMb(), 400.0);
    EXPECT_GE(sim.result().background_reclaims, 4);
}

TEST(BackgroundReclaim, CountsAlsoAppearInEvictions)
{
    const SimResult r = run(workload(), 10 * kSecond, 500);
    EXPECT_GE(r.evictions, r.background_reclaims);
}

TEST(BackgroundReclaim, NoReclaimsWhenMemoryAmple)
{
    const Trace t = workload();
    const MemMb huge = t.stats().total_unique_mem_mb * 4;
    const SimResult r = run(t, 10 * kSecond, 500, huge);
    EXPECT_EQ(r.background_reclaims, 0);
}

}  // namespace
}  // namespace faascache

#include "util/histogram.h"

#include <gtest/gtest.h>

namespace faascache {
namespace {

TEST(Histogram, EmptyPercentileIsZero)
{
    Histogram h(1.0, 10);
    EXPECT_EQ(h.percentile(0.5), 0.0);
    EXPECT_EQ(h.totalCount(), 0);
}

TEST(Histogram, BucketAssignment)
{
    Histogram h(10.0, 5);
    h.add(0.0);    // bucket 0
    h.add(9.99);   // bucket 0
    h.add(10.0);   // bucket 1
    h.add(49.99);  // bucket 4
    EXPECT_EQ(h.bucketCount(0), 2);
    EXPECT_EQ(h.bucketCount(1), 1);
    EXPECT_EQ(h.bucketCount(4), 1);
    EXPECT_EQ(h.totalCount(), 4);
    EXPECT_EQ(h.overflowCount(), 0);
}

TEST(Histogram, NegativeClampsToFirstBucket)
{
    Histogram h(1.0, 4);
    h.add(-3.0);
    EXPECT_EQ(h.bucketCount(0), 1);
}

TEST(Histogram, OverflowTracked)
{
    Histogram h(10.0, 5);
    h.add(50.0);   // exactly at range end -> overflow
    h.add(1000.0);
    h.add(5.0);
    EXPECT_EQ(h.overflowCount(), 2);
    EXPECT_EQ(h.totalCount(), 3);
    EXPECT_NEAR(h.overflowFraction(), 2.0 / 3.0, 1e-12);
}

TEST(Histogram, PercentileAtBucketGranularity)
{
    Histogram h(1.0, 100);
    for (int i = 0; i < 100; ++i)
        h.add(static_cast<double>(i) + 0.5);
    // Each bucket holds one sample; p-th percentile is the upper edge of
    // the ceil(p*100)-th bucket.
    EXPECT_DOUBLE_EQ(h.percentile(0.01), 1.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.50), 50.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.99), 99.0);
    EXPECT_DOUBLE_EQ(h.percentile(1.00), 100.0);
}

TEST(Histogram, PercentileIgnoresOverflow)
{
    Histogram h(1.0, 2);
    h.add(0.5);
    h.add(0.5);
    h.add(100.0);  // overflow
    EXPECT_DOUBLE_EQ(h.percentile(1.0), 1.0);
}

TEST(Histogram, PercentileClampsArgument)
{
    Histogram h(1.0, 4);
    h.add(2.5);
    EXPECT_DOUBLE_EQ(h.percentile(-1.0), h.percentile(0.0));
    EXPECT_DOUBLE_EQ(h.percentile(2.0), h.percentile(1.0));
}

TEST(Histogram, PercentileMonotone)
{
    Histogram h(2.0, 50);
    for (int i = 0; i < 500; ++i)
        h.add(static_cast<double>(i % 100));
    double prev = 0.0;
    for (double p = 0.0; p <= 1.0; p += 0.05) {
        const double v = h.percentile(p);
        EXPECT_GE(v, prev);
        prev = v;
    }
}

TEST(Histogram, ResetClears)
{
    Histogram h(1.0, 4);
    h.add(1.0);
    h.add(100.0);
    h.reset();
    EXPECT_EQ(h.totalCount(), 0);
    EXPECT_EQ(h.overflowCount(), 0);
    EXPECT_EQ(h.bucketCount(1), 0);
    EXPECT_EQ(h.percentile(0.9), 0.0);
}

}  // namespace
}  // namespace faascache

/**
 * @file
 * Runtime invariant auditor (DESIGN.md §4g): the Auditor recorder
 * itself, and end-to-end audited runs — a clean platform/cluster run
 * must produce zero violations, and attaching an auditor must never
 * change the simulation outcome (byte-identical checkpoint payloads).
 */
#include "util/audit.h"

#include <gtest/gtest.h>

#include "platform/cluster.h"
#include "platform/experiment_checkpoint.h"
#include "platform/load_generator.h"
#include "platform/server.h"

namespace faascache {
namespace {

// --- The recorder itself -------------------------------------------------

TEST(Auditor, OffModeRecordsNothing)
{
    Auditor a(AuditMode::Off);
    EXPECT_FALSE(a.enabled());
    // Layers guard on enabled(), but even a direct fail() must stay
    // inert so a stale pointer can't corrupt an audited-off run.
    a.require(false, "some-invariant", 10, 1, "ignored");
    EXPECT_EQ(a.violationCount(), 0);
    EXPECT_TRUE(a.violations().empty());
    EXPECT_EQ(a.report(), "");
}

TEST(Auditor, RecordsNamedViolations)
{
    Auditor a;
    EXPECT_TRUE(a.enabled());
    a.fail("request-conservation", 42 * kSecond, 3, "arrivals 5 != 4");
    a.require(true, "pool-memory-accounting", kSecond, 0, "fine");
    a.require(false, "event-order", 2 * kSecond, 17, "went backwards");

    EXPECT_EQ(a.violationCount(), 2);
    const auto v = a.violations();
    ASSERT_EQ(v.size(), 2u);
    EXPECT_EQ(v[0].invariant, "request-conservation");
    EXPECT_EQ(v[0].time_us, 42 * kSecond);
    EXPECT_EQ(v[0].entity, 3);
    EXPECT_EQ(v[1].invariant, "event-order");

    const std::string line = v[0].format();
    EXPECT_NE(line.find("request-conservation"), std::string::npos);
    EXPECT_NE(line.find("arrivals 5 != 4"), std::string::npos);

    const std::string report = a.report();
    EXPECT_NE(report.find("event-order"), std::string::npos);
}

TEST(Auditor, StorageIsBoundedButCountIsExact)
{
    Auditor a;
    for (int i = 0; i < 100; ++i)
        a.fail("flood", i, i, "x");
    EXPECT_EQ(a.violationCount(), 100);
    EXPECT_EQ(a.violations().size(), Auditor::kMaxStored);
    // The first kMaxStored are kept verbatim.
    EXPECT_EQ(a.violations().back().time_us,
              static_cast<TimeUs>(Auditor::kMaxStored - 1));

    a.reset();
    EXPECT_EQ(a.violationCount(), 0);
    EXPECT_TRUE(a.enabled()) << "reset() must not change the mode";
}

// --- Audited end-to-end runs ---------------------------------------------

ServerConfig
serverConfig(Auditor* audit = nullptr)
{
    ServerConfig c;
    c.cores = 4;
    c.memory_mb = 512;
    c.audit = audit;
    return c;
}

TEST(AuditedRuns, CleanServerRunHasZeroViolations)
{
    const Trace t = skewedFrequencyWorkload(30 * kMinute);
    Auditor audit;
    Server server(makePolicy(PolicyKind::GreedyDual),
                  serverConfig(&audit));
    const PlatformResult r = server.run(t);
    EXPECT_GT(r.served(), 0);
    EXPECT_EQ(audit.violationCount(), 0) << audit.report();
}

TEST(AuditedRuns, AuditingDoesNotPerturbServerResults)
{
    const Trace t = skewedFrequencyWorkload(30 * kMinute);

    Server plain(makePolicy(PolicyKind::GreedyDual), serverConfig());
    const PlatformResult base = plain.run(t);

    Auditor audit;
    Server audited(makePolicy(PolicyKind::GreedyDual),
                   serverConfig(&audit));
    const PlatformResult checked = audited.run(t);

    EXPECT_EQ(audit.violationCount(), 0) << audit.report();
    EXPECT_EQ(encodePlatformCheckpointPayload("cell", base),
              encodePlatformCheckpointPayload("cell", checked));
}

TEST(AuditedRuns, OffModeAuditorIsIgnoredEntirely)
{
    const Trace t = skewedFrequencyWorkload(10 * kMinute);

    Server plain(makePolicy(PolicyKind::GreedyDual), serverConfig());
    const PlatformResult base = plain.run(t);

    Auditor off(AuditMode::Off);
    Server muted(makePolicy(PolicyKind::GreedyDual),
                 serverConfig(&off));
    const PlatformResult r = muted.run(t);

    EXPECT_EQ(off.violationCount(), 0);
    EXPECT_EQ(encodePlatformCheckpointPayload("cell", base),
              encodePlatformCheckpointPayload("cell", r));
}

TEST(AuditedRuns, FaultyServerRunStaysConservative)
{
    // Crashes and OOM kills stress every rollback path; the ledger
    // must still balance.
    const Trace t = skewedFrequencyWorkload(30 * kMinute);
    Auditor audit;
    ServerConfig cfg = serverConfig(&audit);

    FaultPlan plan;
    plan.crashes.push_back({0, 5 * kMinute, kMinute});
    plan.crashes.push_back({0, 15 * kMinute, 2 * kMinute});
    plan.oom_kills.push_back({0, 10 * kMinute});
    plan.oom_kills.push_back({0, 20 * kMinute});
    FaultInjector injector(plan, 0);

    Server server(makePolicy(PolicyKind::GreedyDual), cfg);
    server.setFaultInjector(&injector);
    const PlatformResult r = server.run(t);

    EXPECT_GT(r.robustness.crashes, 0);
    EXPECT_EQ(audit.violationCount(), 0) << audit.report();
}

TEST(AuditedRuns, ChaoticClusterRunHasZeroViolations)
{
    const Trace t = skewedFrequencyWorkload(30 * kMinute);
    Auditor audit;

    ClusterConfig c;
    c.num_servers = 4;
    c.server.cores = 4;
    c.server.memory_mb = 512;
    c.server.audit = &audit;
    c.faults.crashes.push_back({1, 5 * kMinute, 2 * kMinute});
    CrashBurst burst;
    burst.at_us = 12 * kMinute;
    burst.servers = 2;
    burst.restart_after_us = kMinute;
    c.faults.crash_bursts.push_back(burst);
    c.faults.partitions.push_back({0, 8 * kMinute, 9 * kMinute});
    c.faults.oom_kills.push_back({2, 10 * kMinute});
    c.failover.retry_budget.ratio = 0.2;
    c.failover.breaker.failure_threshold = 3;

    const ClusterResult r = runCluster(t, PolicyKind::GreedyDual, c);
    EXPECT_GT(r.robustness().crashes, 1);
    EXPECT_EQ(audit.violationCount(), 0) << audit.report();
}

TEST(AuditedRuns, AuditingDoesNotPerturbClusterResults)
{
    const Trace t = skewedFrequencyWorkload(20 * kMinute);
    ClusterConfig c;
    c.num_servers = 3;
    c.server.cores = 4;
    c.server.memory_mb = 512;
    c.faults.crashes.push_back({0, 5 * kMinute, kMinute});
    c.faults.partitions.push_back({1, 7 * kMinute, 8 * kMinute});

    const ClusterResult base = runCluster(t, PolicyKind::GreedyDual, c);

    Auditor audit;
    c.server.audit = &audit;
    const ClusterResult checked =
        runCluster(t, PolicyKind::GreedyDual, c);

    EXPECT_EQ(audit.violationCount(), 0) << audit.report();
    EXPECT_EQ(encodeClusterCheckpointPayload("cell", base),
              encodeClusterCheckpointPayload("cell", checked));
}

}  // namespace
}  // namespace faascache

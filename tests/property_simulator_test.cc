// Property-style parameterized sweep: core simulator invariants must
// hold for every (policy, memory size) combination on a randomized
// workload.
#include <gtest/gtest.h>

#include <tuple>

#include "core/policy_factory.h"
#include "sim/simulator.h"
#include "trace/azure_model.h"
#include "trace/samplers.h"

namespace faascache {
namespace {

const Trace&
sweepTrace()
{
    static const Trace kTrace = [] {
        AzureModelConfig config;
        config.seed = 77;
        config.num_functions = 250;
        config.duration_us = 20 * kMinute;
        config.iat_median_sec = 30.0;
        config.mem_median_mb = 64.0;
        config.mem_sigma = 0.7;
        config.mem_max_mb = 512.0;
        return generateAzureTrace(config);
    }();
    return kTrace;
}

using SweepParam = std::tuple<PolicyKind, int>;  // policy, memory factor %

class SimulatorInvariants : public testing::TestWithParam<SweepParam>
{
};

TEST_P(SimulatorInvariants, HoldThroughoutTheRun)
{
    const auto [kind, percent] = GetParam();
    const Trace& trace = sweepTrace();
    const MemMb memory = std::max(
        600.0,
        trace.stats().total_unique_mem_mb * percent / 100.0);

    SimulatorConfig config;
    config.memory_mb = memory;
    config.memory_sample_interval_us = 0;
    Simulator sim(trace, makePolicy(kind), config);

    TimeUs last_time = 0;
    while (!sim.done()) {
        sim.step();
        // Time moves forward.
        EXPECT_GE(sim.now(), last_time);
        last_time = sim.now();
        // Busy containers can exceed nothing: used <= capacity always
        // holds here because resize() is never called.
        EXPECT_LE(sim.pool().usedMb(), memory + 1e-6);
    }

    const SimResult& r = sim.result();
    // Every invocation is accounted exactly once.
    EXPECT_EQ(r.total(),
              static_cast<std::int64_t>(trace.invocations().size()));
    // Cold starts can never beat the warm baseline.
    EXPECT_GE(r.actual_exec_us, r.baseline_exec_us);
    // Per-function outcomes sum to the totals.
    std::int64_t warm = 0, cold = 0, dropped = 0;
    for (const auto& f : r.per_function) {
        warm += f.warm;
        cold += f.cold;
        dropped += f.dropped;
    }
    EXPECT_EQ(warm, r.warm_starts);
    EXPECT_EQ(cold, r.cold_starts);
    EXPECT_EQ(dropped, r.dropped);
    // A cold start happens at most once per eviction round plus the
    // rounds where no eviction was needed; rounds never exceed colds
    // plus drops.
    EXPECT_LE(r.eviction_rounds, r.cold_starts + r.dropped);
    // The metric helpers stay in range.
    EXPECT_GE(r.coldStartFraction(), 0.0);
    EXPECT_LE(r.coldStartFraction(), 1.0);
    EXPECT_GE(r.dropFraction(), 0.0);
    EXPECT_LE(r.dropFraction(), 1.0);
}

TEST_P(SimulatorInvariants, DeterministicAcrossRuns)
{
    const auto [kind, percent] = GetParam();
    const Trace& trace = sweepTrace();
    SimulatorConfig config;
    config.memory_mb = std::max(
        600.0, trace.stats().total_unique_mem_mb * percent / 100.0);
    config.memory_sample_interval_us = 0;

    const SimResult a = simulateTrace(trace, makePolicy(kind), config);
    const SimResult b = simulateTrace(trace, makePolicy(kind), config);
    EXPECT_EQ(a.warm_starts, b.warm_starts);
    EXPECT_EQ(a.cold_starts, b.cold_starts);
    EXPECT_EQ(a.dropped, b.dropped);
    EXPECT_EQ(a.evictions, b.evictions);
    EXPECT_EQ(a.actual_exec_us, b.actual_exec_us);
}

INSTANTIATE_TEST_SUITE_P(
    PolicyMemorySweep, SimulatorInvariants,
    testing::Combine(testing::ValuesIn(allPolicyKinds()),
                     testing::Values(10, 40, 120)),
    [](const testing::TestParamInfo<SweepParam>& info) {
        return policyKindName(std::get<0>(info.param)) + "_mem" +
            std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace faascache

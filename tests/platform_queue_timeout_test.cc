/**
 * @file
 * Queue-timeout boundary semantics: a request expires only when its
 * wait strictly exceeds queue_timeout_us, same-timestamp arrivals drop
 * in FIFO order, and an expired queue head never blocks a dispatchable
 * request behind it.
 */
#include <gtest/gtest.h>

#include "core/policy_factory.h"
#include "platform/server.h"

namespace faascache {
namespace {

FunctionSpec
fn(FunctionId id, MemMb mem, double warm_sec = 1.0, double init_sec = 1.0)
{
    return makeFunction(id, "fn" + std::to_string(id), mem,
                        fromSeconds(warm_sec), fromSeconds(init_sec));
}

PlatformResult
run(const Trace& trace, const ServerConfig& cfg)
{
    Server server(makePolicy(PolicyKind::GreedyDual), cfg);
    return server.run(trace);
}

TEST(QueueTimeout, WaitExactlyAtTimeoutIsStillDispatched)
{
    // fn0 holds the single core until t = 10 s. fn1 arrives at t = 2 s
    // with an 8 s timeout: at the t = 10 s drain its wait is exactly
    // queue_timeout_us, which must NOT expire it (expiry is strict >).
    Trace t("boundary");
    t.addFunction(fn(0, 100, 10.0, 0.0));
    t.addFunction(fn(1, 100, 1.0, 0.0));
    t.addInvocation(0, 0);
    t.addInvocation(1, 2 * kSecond);

    ServerConfig cfg;
    cfg.cores = 1;
    cfg.memory_mb = 1'000;
    cfg.queue_timeout_us = 8 * kSecond;
    const PlatformResult r = run(t, cfg);

    EXPECT_EQ(r.served(), 2);
    EXPECT_EQ(r.dropped_timeout, 0);
    ASSERT_EQ(r.latencies_sec.size(), 2u);
    EXPECT_NEAR(r.latencies_sec[1], 9.0, 1e-6);  // 8 s wait + 1 s run
}

TEST(QueueTimeout, WaitOneTickPastTimeoutExpires)
{
    // Same shape, timeout one microsecond shorter: the t = 10 s drain
    // sees an 8 s wait > (8 s - 1 us) and must drop the request.
    Trace t("boundary");
    t.addFunction(fn(0, 100, 10.0, 0.0));
    t.addFunction(fn(1, 100, 1.0, 0.0));
    t.addInvocation(0, 0);
    t.addInvocation(1, 2 * kSecond);

    ServerConfig cfg;
    cfg.cores = 1;
    cfg.memory_mb = 1'000;
    cfg.queue_timeout_us = 8 * kSecond - 1;
    const PlatformResult r = run(t, cfg);

    EXPECT_EQ(r.served(), 1);
    EXPECT_EQ(r.dropped_timeout, 1);
    EXPECT_EQ(r.per_function[1].dropped, 1);
}

TEST(QueueTimeout, SameTimestampArrivalsDropInFifoOrder)
{
    // Four distinct functions arrive at the same instant behind a
    // saturated core with a queue of two: trace order decides who gets
    // buffered, so the overflow drops must hit exactly fn3 and fn4.
    Trace t("fifo");
    t.addFunction(fn(0, 100, 100.0, 0.0));
    for (FunctionId id = 1; id <= 4; ++id)
        t.addFunction(fn(id, 100, 1.0, 0.0));
    t.addInvocation(0, 0);
    for (FunctionId id = 1; id <= 4; ++id)
        t.addInvocation(id, kSecond);

    ServerConfig cfg;
    cfg.cores = 1;
    cfg.memory_mb = 10'000;
    cfg.queue_capacity = 2;
    cfg.queue_timeout_us = kHour;
    const PlatformResult r = run(t, cfg);

    EXPECT_EQ(r.dropped_queue_full, 2);
    EXPECT_EQ(r.per_function[1].dropped, 0);
    EXPECT_EQ(r.per_function[2].dropped, 0);
    EXPECT_EQ(r.per_function[3].dropped, 1);
    EXPECT_EQ(r.per_function[4].dropped, 1);
}

TEST(QueueTimeout, SameTimestampExpiriesAllDropAtOneDrain)
{
    // Both queued requests share the same enqueue time and the same
    // deadline; the drain that expires one must expire both (no request
    // survives on queue position alone).
    Trace t("expire-pair");
    t.addFunction(fn(0, 100, 60.0, 0.0));
    t.addFunction(fn(1, 100, 1.0, 0.0));
    t.addFunction(fn(2, 100, 1.0, 0.0));
    t.addInvocation(0, 0);
    t.addInvocation(1, kSecond);
    t.addInvocation(2, kSecond);

    ServerConfig cfg;
    cfg.cores = 1;
    cfg.memory_mb = 1'000;
    cfg.queue_timeout_us = 10 * kSecond;
    const PlatformResult r = run(t, cfg);

    EXPECT_EQ(r.served(), 1);
    EXPECT_EQ(r.dropped_timeout, 2);
    EXPECT_EQ(r.per_function[1].dropped, 1);
    EXPECT_EQ(r.per_function[2].dropped, 1);
}

TEST(QueueTimeout, ExpiredHeadDoesNotBlockDispatchableRequest)
{
    // fn1 (queued at t = 1 s, 10 s timeout) has expired by the time the
    // core frees at t = 20 s; fn2 (queued at t = 15 s, warm hit on
    // fn0's container) is dispatchable. One drain must drop the expired
    // head AND serve the request behind it.
    Trace t("expired-head");
    t.addFunction(fn(0, 100, 20.0, 0.0));
    t.addFunction(fn(1, 100, 1.0, 0.0));
    t.addInvocation(0, 0);
    t.addInvocation(1, kSecond);
    t.addInvocation(0, 15 * kSecond);

    ServerConfig cfg;
    cfg.cores = 1;
    cfg.memory_mb = 1'000;
    cfg.queue_timeout_us = 10 * kSecond;
    const PlatformResult r = run(t, cfg);

    EXPECT_EQ(r.dropped_timeout, 1);
    EXPECT_EQ(r.per_function[1].dropped, 1);
    EXPECT_EQ(r.served(), 2);
    EXPECT_EQ(r.warm_starts, 1);
    ASSERT_EQ(r.latencies_sec.size(), 2u);
    // Served at t = 20 s off a warm container: 5 s wait + 20 s run.
    EXPECT_NEAR(r.latencies_sec[1], 25.0, 1e-6);
}

TEST(QueueTimeout, MemoryBlockedHeadDoesNotBlockSmallerRequest)
{
    // The head needs memory held by a busy container (not dispatchable,
    // not expired); a small request behind it must still start — the
    // per-activation scheduling the server models.
    Trace t("blocked-head");
    t.addFunction(fn(0, 900, 50.0, 0.0));
    t.addFunction(fn(1, 900, 1.0, 1.0));
    t.addFunction(fn(2, 100, 1.0, 1.0));
    t.addInvocation(0, 0);
    t.addInvocation(1, kSecond);
    t.addInvocation(2, 2 * kSecond);

    ServerConfig cfg;
    cfg.cores = 4;
    cfg.memory_mb = 1'000;
    cfg.queue_timeout_us = kHour;
    const PlatformResult r = run(t, cfg);

    EXPECT_EQ(r.served(), 3);
    ASSERT_EQ(r.latencies_sec.size(), 3u);
    // fn2 started at t = 2 s (2 s cold) — it never waited for fn1,
    // which could only start after fn0 finished at t = 50 s.
    EXPECT_NEAR(r.latencies_sec[0], 2.0, 1e-6);
    EXPECT_GT(r.latencies_sec[2], 40.0);
}

}  // namespace
}  // namespace faascache

#include "core/container.h"

#include <gtest/gtest.h>

namespace faascache {
namespace {

FunctionSpec
spec()
{
    return makeFunction(3, "fn", 128, fromMillis(100), fromMillis(400));
}

TEST(Container, ConstructionDefaults)
{
    const Container c(7, spec(), 1000);
    EXPECT_EQ(c.id(), 7u);
    EXPECT_EQ(c.function(), 3u);
    EXPECT_DOUBLE_EQ(c.memMb(), 128.0);
    EXPECT_EQ(c.createdAt(), 1000);
    EXPECT_EQ(c.lastUsed(), 1000);
    EXPECT_TRUE(c.idle());
    EXPECT_FALSE(c.prewarmed());
    EXPECT_EQ(c.useCount(), 0);
}

TEST(Container, PrewarmedFlag)
{
    const Container c(1, spec(), 0, /*prewarmed=*/true);
    EXPECT_TRUE(c.prewarmed());
}

TEST(Container, InvocationLifecycle)
{
    Container c(1, spec(), 0);
    c.startInvocation(100, 600);
    EXPECT_TRUE(c.busy());
    EXPECT_EQ(c.busyUntil(), 600);
    EXPECT_EQ(c.lastUsed(), 100);
    EXPECT_EQ(c.useCount(), 1);
    c.finishInvocation();
    EXPECT_TRUE(c.idle());
    EXPECT_EQ(c.lastUsed(), 100);
}

TEST(Container, MultipleInvocationsIncrementUseCount)
{
    Container c(1, spec(), 0);
    for (int i = 1; i <= 3; ++i) {
        c.startInvocation(i * 1000, i * 1000 + 10);
        c.finishInvocation();
    }
    EXPECT_EQ(c.useCount(), 3);
    EXPECT_EQ(c.lastUsed(), 3000);
}

TEST(Container, PolicyFieldsStored)
{
    Container c(1, spec(), 0);
    c.setPriority(3.5);
    c.setCredit(1.25);
    c.setPolicyClock(7.0);
    EXPECT_DOUBLE_EQ(c.priority(), 3.5);
    EXPECT_DOUBLE_EQ(c.credit(), 1.25);
    EXPECT_DOUBLE_EQ(c.policyClock(), 7.0);
}

TEST(ContainerDeathTest, StartWhileBusyAsserts)
{
    Container c(1, spec(), 0);
    c.startInvocation(0, 10);
    EXPECT_DEATH(c.startInvocation(5, 15), "");
}

TEST(ContainerDeathTest, FinishWhileIdleAsserts)
{
    Container c(1, spec(), 0);
    EXPECT_DEATH(c.finishInvocation(), "");
}

}  // namespace
}  // namespace faascache

#include "platform/experiment.h"

#include <gtest/gtest.h>

#include "platform/load_generator.h"

namespace faascache {
namespace {

ServerConfig
fig7Server()
{
    ServerConfig c;
    c.cores = 8;
    c.memory_mb = 1000;
    return c;
}

TEST(LoadGenerator, SkewedFrequencyShape)
{
    const Trace t = skewedFrequencyWorkload(10 * kMinute);
    EXPECT_TRUE(t.validate());
    EXPECT_TRUE(t.isSorted());
    ASSERT_EQ(t.functions().size(), 4u);
    const auto counts = t.invocationCounts();
    // Floating-point (IAT 400 ms) dominates the 1500 ms functions.
    EXPECT_GT(counts[3], 2 * counts[0]);
    EXPECT_GT(counts[3], 2 * counts[1]);
    EXPECT_GT(counts[3], 2 * counts[2]);
}

TEST(LoadGenerator, SkewedFrequencyDeterministicInSeed)
{
    const Trace a = skewedFrequencyWorkload(5 * kMinute, 7);
    const Trace b = skewedFrequencyWorkload(5 * kMinute, 7);
    const Trace c = skewedFrequencyWorkload(5 * kMinute, 8);
    ASSERT_EQ(a.invocations().size(), b.invocations().size());
    for (std::size_t i = 0; i < a.invocations().size(); ++i)
        EXPECT_EQ(a.invocations()[i], b.invocations()[i]);
    EXPECT_NE(a.invocations().size(), c.invocations().size());
}

TEST(LoadGenerator, CyclicVisitsAllFunctionsEqually)
{
    const Trace t = cyclicWorkload(10 * kMinute);
    const auto counts = t.invocationCounts();
    for (std::size_t i = 1; i < counts.size(); ++i)
        EXPECT_NEAR(static_cast<double>(counts[i]),
                    static_cast<double>(counts[0]), 1.0);
}

TEST(LoadGenerator, SkewedSizeSmallFunctionsDominate)
{
    const Trace t = skewedSizeWorkload(10 * kMinute);
    const auto counts = t.invocationCounts();
    ASSERT_EQ(counts.size(), 4u);
    // Small (ids 2, 3) fire far more often than large (ids 0, 1).
    EXPECT_GT(counts[2], 2 * counts[0]);
    EXPECT_GT(counts[3], 2 * counts[1]);
}

TEST(Experiment, ComparisonRunsBothPolicies)
{
    const Trace t = skewedFrequencyWorkload(5 * kMinute);
    const PlatformComparison cmp =
        compareOpenWhiskVsFaasCache(t, fig7Server());
    EXPECT_EQ(cmp.openwhisk.policy_name, "TTL");
    EXPECT_EQ(cmp.faascache.policy_name, "GD");
    EXPECT_GT(cmp.openwhisk.served(), 0);
    EXPECT_GT(cmp.faascache.served(), 0);
    EXPECT_EQ(cmp.openwhisk.total(), cmp.faascache.total());
}

TEST(Experiment, FaasCacheAtLeastMatchesOpenWhiskOnCyclic)
{
    // The cyclic pattern is the adversarial case for naive eviction:
    // Greedy-Dual keeps the small, costly-to-initialize functions warm
    // while vanilla OpenWhisk churns the whole pool.
    const Trace t = cyclicWorkload(20 * kMinute);
    const PlatformComparison cmp =
        compareOpenWhiskVsFaasCache(t, fig7Server());
    EXPECT_GE(cmp.warmStartRatio(), 1.2);
}

TEST(Experiment, RatiosSafeOnDegenerateResults)
{
    PlatformComparison cmp;
    EXPECT_DOUBLE_EQ(cmp.warmStartRatio(), 1.0);
    EXPECT_DOUBLE_EQ(cmp.servedRatio(), 1.0);
    EXPECT_DOUBLE_EQ(cmp.latencyImprovement(), 1.0);
}

TEST(Experiment, ColdStartCpuSlotsSlowDispatch)
{
    // With 2 cores and 2 slots per cold init, two simultaneous cold
    // starts cannot overlap their init phases.
    Trace t("t");
    t.addFunction(makeFunction(0, "a", 100, fromSeconds(1), fromSeconds(2)));
    t.addFunction(makeFunction(1, "b", 100, fromSeconds(1), fromSeconds(2)));
    t.addInvocation(0, 0);
    t.addInvocation(1, 0);

    ServerConfig config;
    config.cores = 2;
    config.memory_mb = 1000;
    config.cold_start_cpu_slots = 2;
    Server server(makePolicy(PolicyKind::Lru), config);
    const PlatformResult r = server.run(t);
    ASSERT_EQ(r.served(), 2);
    // First: latency 3 s (2 s init + 1 s run). After its InitDone at
    // 2 s one slot frees, but a cold start needs both, so the second
    // request waits for the full Finish at 3 s: latency 3 + 3 = 6 s.
    EXPECT_NEAR(r.latencies_sec[0], 3.0, 1e-6);
    EXPECT_NEAR(r.latencies_sec[1], 6.0, 1e-6);
}

TEST(Experiment, TtlVictimOrderChangesEvictions)
{
    // Build a pool where the oldest-created container is the hottest:
    // OldestCreated evicts it, LRU spares it.
    ContainerPool pool(10'000);
    TtlPolicy lru(10 * kMinute, TtlVictimOrder::LeastRecentlyUsed);
    TtlPolicy fifo(10 * kMinute, TtlVictimOrder::OldestCreated);

    const FunctionSpec hot =
        makeFunction(0, "hot", 100, fromMillis(100), fromMillis(100));
    const FunctionSpec cold_fn =
        makeFunction(1, "cold", 100, fromMillis(100), fromMillis(100));

    Container& oldest_hot = pool.add(hot, 0);
    oldest_hot.startInvocation(10 * kSecond, 10 * kSecond + hot.warm_us);
    oldest_hot.finishInvocation();  // recently used
    Container& newer_cold = pool.add(cold_fn, kSecond);
    newer_cold.startInvocation(2 * kSecond, 2 * kSecond + cold_fn.warm_us);
    newer_cold.finishInvocation();  // used long ago

    const auto lru_victims = lru.selectVictims(pool, 50, 20 * kSecond);
    ASSERT_EQ(lru_victims.size(), 1u);
    EXPECT_EQ(lru_victims[0], newer_cold.id());

    const auto fifo_victims = fifo.selectVictims(pool, 50, 20 * kSecond);
    ASSERT_EQ(fifo_victims.size(), 1u);
    EXPECT_EQ(fifo_victims[0], oldest_hot.id());
}

}  // namespace
}  // namespace faascache

#include "core/landlord_policy.h"

#include <gtest/gtest.h>

#include "core/container_pool.h"

namespace faascache {
namespace {

// (memory MB, init seconds)
FunctionSpec
fn(FunctionId id, MemMb mem, double init_sec)
{
    return makeFunction(id, "fn" + std::to_string(id), mem, fromMillis(100),
                        fromSeconds(init_sec));
}

Container&
coldUse(ContainerPool& pool, LandlordPolicy& policy,
        const FunctionSpec& spec, TimeUs now)
{
    policy.onInvocationArrival(spec, now);
    Container& c = pool.add(spec, now);
    c.startInvocation(now, now + spec.cold_us);
    policy.onColdStart(c, spec, now);
    c.finishInvocation();
    return c;
}

TEST(Landlord, CreditSetToInitCostOnUse)
{
    ContainerPool pool(10'000);
    LandlordPolicy policy;
    Container& c = coldUse(pool, policy, fn(0, 100, 2.0), 0);
    EXPECT_DOUBLE_EQ(c.credit(), 2.0);
}

TEST(Landlord, WarmUseRestoresCredit)
{
    ContainerPool pool(10'000);
    LandlordPolicy policy;
    const FunctionSpec f = fn(0, 100, 2.0);
    Container& c = coldUse(pool, policy, f, 0);
    c.setCredit(0.1);  // pretend rent was charged
    policy.onInvocationArrival(f, kSecond);
    c.startInvocation(kSecond, kSecond + f.warm_us);
    policy.onWarmStart(c, f, kSecond);
    c.finishInvocation();
    EXPECT_DOUBLE_EQ(c.credit(), 2.0);
}

TEST(Landlord, EvictsLowestCreditDensity)
{
    ContainerPool pool(10'000);
    LandlordPolicy policy;
    // Credit density credit/size: f0 = 2/100 = 0.02, f1 = 3/50 = 0.06.
    Container& cheap = coldUse(pool, policy, fn(0, 100, 2.0), 0);
    Container& valuable = coldUse(pool, policy, fn(1, 50, 3.0), kSecond);

    const auto victims = policy.selectVictims(pool, 60, 2 * kSecond);
    ASSERT_EQ(victims.size(), 1u);
    EXPECT_EQ(victims[0], cheap.id());
    // Rent delta = 0.02 charged to everyone: valuable keeps 3 - 0.02*50.
    EXPECT_NEAR(valuable.credit(), 3.0 - 0.02 * 50.0, 1e-9);
}

TEST(Landlord, RentIsChargedGlobally)
{
    ContainerPool pool(10'000);
    LandlordPolicy policy;
    Container& a = coldUse(pool, policy, fn(0, 100, 1.0), 0);
    Container& b = coldUse(pool, policy, fn(1, 100, 2.0), 0);
    Container& c = coldUse(pool, policy, fn(2, 100, 4.0), 0);

    const auto victims = policy.selectVictims(pool, 50, kSecond);
    ASSERT_EQ(victims.size(), 1u);
    EXPECT_EQ(victims[0], a.id());
    // delta = 1/100 = 0.01; b and c each pay 0.01 * 100 = 1.
    EXPECT_NEAR(b.credit(), 1.0, 1e-9);
    EXPECT_NEAR(c.credit(), 3.0, 1e-9);
}

TEST(Landlord, RepeatedRoundsUntilEnoughFreed)
{
    ContainerPool pool(10'000);
    LandlordPolicy policy;
    Container& a = coldUse(pool, policy, fn(0, 100, 1.0), 0);
    Container& b = coldUse(pool, policy, fn(1, 100, 2.0), 0);
    coldUse(pool, policy, fn(2, 100, 4.0), 0);

    // Needs 150 MB: two eviction rounds (a then b).
    const auto victims = policy.selectVictims(pool, 150, kSecond);
    ASSERT_EQ(victims.size(), 2u);
    EXPECT_EQ(victims[0], a.id());
    EXPECT_EQ(victims[1], b.id());
}

TEST(Landlord, SparedInsolventContainersKeepZeroCredit)
{
    ContainerPool pool(10'000);
    LandlordPolicy policy;
    // Two identical containers become insolvent in the same round, but
    // only one needs to go.
    Container& a = coldUse(pool, policy, fn(0, 100, 1.0), 0);
    Container& b = coldUse(pool, policy, fn(1, 100, 1.0), kSecond);

    const auto victims = policy.selectVictims(pool, 50, 2 * kSecond);
    ASSERT_EQ(victims.size(), 1u);
    EXPECT_EQ(victims[0], a.id());  // older one goes first
    EXPECT_DOUBLE_EQ(b.credit(), 0.0);
}

TEST(Landlord, ZeroInitCostEvictedFirst)
{
    ContainerPool pool(10'000);
    LandlordPolicy policy;
    // A function with zero init cost has zero credit: free to evict.
    Container& free_fn = coldUse(pool, policy, fn(0, 100, 0.0), 0);
    Container& costly = coldUse(pool, policy, fn(1, 100, 5.0), kSecond);

    const auto victims = policy.selectVictims(pool, 50, 2 * kSecond);
    ASSERT_EQ(victims.size(), 1u);
    EXPECT_EQ(victims[0], free_fn.id());
    // delta was 0: the costly container pays no rent.
    EXPECT_DOUBLE_EQ(costly.credit(), 5.0);
}

TEST(Landlord, BestEffortWhenNotEnoughIdle)
{
    ContainerPool pool(10'000);
    LandlordPolicy policy;
    coldUse(pool, policy, fn(0, 100, 1.0), 0);
    const auto victims = policy.selectVictims(pool, 500, kSecond);
    EXPECT_EQ(victims.size(), 1u);  // all it can offer
}

TEST(Landlord, NameIsLND)
{
    EXPECT_EQ(LandlordPolicy().name(), "LND");
}

}  // namespace
}  // namespace faascache

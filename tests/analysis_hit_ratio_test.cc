#include "analysis/hit_ratio_curve.h"

#include <gtest/gtest.h>

#include "analysis/reuse_distance.h"

namespace faascache {
namespace {

TEST(HitRatioCurve, EmptyCurve)
{
    const HitRatioCurve curve = HitRatioCurve::fromReuseDistances({});
    EXPECT_TRUE(curve.empty());
    EXPECT_EQ(curve.hitRatio(100), 0.0);
    EXPECT_EQ(curve.maxHitRatio(), 0.0);
    EXPECT_EQ(curve.sizeForHitRatio(0.5), 0.0);
}

TEST(HitRatioCurve, IsCdfOfDistances)
{
    // Distances 10, 20, 30 plus one compulsory miss: N = 4.
    const HitRatioCurve curve = HitRatioCurve::fromReuseDistances(
        {kInfiniteReuseDistance, 10.0, 20.0, 30.0});
    EXPECT_DOUBLE_EQ(curve.hitRatio(0), 0.0);
    EXPECT_DOUBLE_EQ(curve.hitRatio(10), 0.25);
    EXPECT_DOUBLE_EQ(curve.hitRatio(20), 0.50);
    EXPECT_DOUBLE_EQ(curve.hitRatio(29.9), 0.50);
    EXPECT_DOUBLE_EQ(curve.hitRatio(30), 0.75);
    EXPECT_DOUBLE_EQ(curve.hitRatio(1e9), 0.75);
}

TEST(HitRatioCurve, MaxHitRatioBoundedByCompulsoryMisses)
{
    const HitRatioCurve curve = HitRatioCurve::fromReuseDistances(
        {kInfiniteReuseDistance, kInfiniteReuseDistance, 5.0, 5.0});
    EXPECT_DOUBLE_EQ(curve.maxHitRatio(), 0.5);
}

TEST(HitRatioCurve, MissRatioComplement)
{
    const HitRatioCurve curve =
        HitRatioCurve::fromReuseDistances({10.0, 20.0});
    EXPECT_DOUBLE_EQ(curve.hitRatio(15) + curve.missRatio(15), 1.0);
}

TEST(HitRatioCurve, Monotone)
{
    const HitRatioCurve curve = HitRatioCurve::fromReuseDistances(
        {5.0, 1.0, 12.0, 7.0, kInfiniteReuseDistance, 3.0});
    double prev = -1.0;
    for (MemMb size = 0; size <= 20; size += 0.5) {
        const double h = curve.hitRatio(size);
        EXPECT_GE(h, prev);
        EXPECT_GE(h, 0.0);
        EXPECT_LE(h, 1.0);
        prev = h;
    }
}

TEST(HitRatioCurve, SizeForHitRatioInvertsCurve)
{
    const HitRatioCurve curve = HitRatioCurve::fromReuseDistances(
        {10.0, 20.0, 30.0, 40.0});
    EXPECT_DOUBLE_EQ(curve.sizeForHitRatio(0.25), 10.0);
    EXPECT_DOUBLE_EQ(curve.sizeForHitRatio(0.5), 20.0);
    EXPECT_DOUBLE_EQ(curve.sizeForHitRatio(1.0), 40.0);
    // Between steps: the smallest size reaching the next step.
    EXPECT_DOUBLE_EQ(curve.sizeForHitRatio(0.3), 20.0);
}

TEST(HitRatioCurve, SizeForZeroTargetIsZero)
{
    const HitRatioCurve curve =
        HitRatioCurve::fromReuseDistances({10.0, 20.0});
    EXPECT_DOUBLE_EQ(curve.sizeForHitRatio(0.0), 0.0);
}

TEST(HitRatioCurve, SizeForUnreachableTargetClamps)
{
    const HitRatioCurve curve = HitRatioCurve::fromReuseDistances(
        {kInfiniteReuseDistance, 10.0});
    // Max achievable is 0.5; target 0.9 clamps to the saturation size.
    EXPECT_DOUBLE_EQ(curve.sizeForHitRatio(0.9), 10.0);
}

TEST(HitRatioCurve, RoundTripSizeAndRatio)
{
    const HitRatioCurve curve = HitRatioCurve::fromReuseDistances(
        {5.0, 5.0, 9.0, 13.0, 21.0, kInfiniteReuseDistance});
    for (double target : {0.1, 0.3, 0.5, 0.8}) {
        const MemMb size = curve.sizeForHitRatio(target);
        EXPECT_GE(curve.hitRatio(size), std::min(target,
                                                 curve.maxHitRatio()) -
                      1e-12);
    }
}

TEST(HitRatioCurve, WeightedEntriesScale)
{
    // Two entries with weight 10 behave like twenty unit entries.
    const HitRatioCurve weighted = HitRatioCurve::fromReuseDistances(
        {10.0, kInfiniteReuseDistance}, 10.0);
    EXPECT_DOUBLE_EQ(weighted.hitRatio(10.0), 0.5);
    EXPECT_DOUBLE_EQ(weighted.totalWeight(), 20.0);
    EXPECT_DOUBLE_EQ(weighted.finiteWeight(), 10.0);
}

}  // namespace
}  // namespace faascache

#include "platform/server.h"

#include <gtest/gtest.h>

#include "core/policy_factory.h"

namespace faascache {
namespace {

FunctionSpec
fn(FunctionId id, MemMb mem, double warm_sec = 1.0, double init_sec = 1.0)
{
    return makeFunction(id, "fn" + std::to_string(id), mem,
                        fromSeconds(warm_sec), fromSeconds(init_sec));
}

ServerConfig
config(int cores, MemMb mem)
{
    ServerConfig c;
    c.cores = cores;
    c.memory_mb = mem;
    return c;
}

PlatformResult
run(const Trace& trace, const ServerConfig& cfg,
    PolicyKind kind = PolicyKind::Lru)
{
    Server server(makePolicy(kind), cfg);
    return server.run(trace);
}

TEST(Server, ServesSingleInvocationCold)
{
    Trace t("t");
    t.addFunction(fn(0, 100));
    t.addInvocation(0, 0);
    const PlatformResult r = run(t, config(2, 1'000));
    EXPECT_EQ(r.cold_starts, 1);
    EXPECT_EQ(r.warm_starts, 0);
    EXPECT_EQ(r.dropped(), 0);
    ASSERT_EQ(r.latencies_sec.size(), 1u);
    EXPECT_NEAR(r.latencies_sec[0], 2.0, 1e-6);  // cold = warm + init
}

TEST(Server, SecondInvocationWarm)
{
    Trace t("t");
    t.addFunction(fn(0, 100));
    t.addInvocation(0, 0);
    t.addInvocation(0, 5 * kSecond);
    const PlatformResult r = run(t, config(2, 1'000));
    EXPECT_EQ(r.warm_starts, 1);
    EXPECT_NEAR(r.meanLatencySecOf(0), (2.0 + 1.0) / 2.0, 1e-6);
}

TEST(Server, QueuesWhenCoresBusy)
{
    Trace t("t");
    t.addFunction(fn(0, 100));
    t.addFunction(fn(1, 100));
    // One core: the second request waits for the first to finish.
    t.addInvocation(0, 0);
    t.addInvocation(1, kSecond);
    const PlatformResult r = run(t, config(1, 1'000));
    EXPECT_EQ(r.served(), 2);
    ASSERT_EQ(r.latencies_sec.size(), 2u);
    // Second request waited 1 s (cold finished at 2 s) + its own 2 s.
    EXPECT_NEAR(r.latencies_sec[1], 3.0, 1e-6);
}

TEST(Server, DropsOnQueueOverflow)
{
    Trace t("t");
    t.addFunction(fn(0, 100, 100.0, 0.0));  // 100 s execution
    for (int i = 0; i < 5; ++i)
        t.addInvocation(0, i * kMillisecond);
    ServerConfig c = config(1, 10'000);
    c.queue_capacity = 2;
    c.queue_timeout_us = kHour;
    const PlatformResult r = run(t, c);
    // 1 running + 2 queued; the other 2 dropped at arrival.
    EXPECT_EQ(r.dropped_queue_full, 2);
}

TEST(Server, DropsOnQueueTimeout)
{
    Trace t("t");
    t.addFunction(fn(0, 100, 120.0, 0.0));  // 2-minute execution
    t.addInvocation(0, 0);
    t.addInvocation(0, kSecond);  // can't run for 2 minutes on 1 core
    ServerConfig c = config(1, 150);  // no memory for a 2nd container
    c.queue_timeout_us = 30 * kSecond;
    const PlatformResult r = run(t, c);
    EXPECT_EQ(r.cold_starts, 1);
    EXPECT_EQ(r.dropped_timeout, 1);
}

TEST(Server, DropsOversizedFunctionImmediately)
{
    Trace t("t");
    t.addFunction(fn(0, 9'999));
    t.addInvocation(0, 0);
    const PlatformResult r = run(t, config(2, 1'000));
    EXPECT_EQ(r.dropped_oversize, 1);
}

TEST(Server, EvictsIdleContainersUnderMemoryPressure)
{
    Trace t("t");
    t.addFunction(fn(0, 600));
    t.addFunction(fn(1, 600));
    t.addInvocation(0, 0);
    t.addInvocation(1, 10 * kSecond);
    const PlatformResult r = run(t, config(4, 1'000));
    EXPECT_EQ(r.cold_starts, 2);
    EXPECT_EQ(r.evictions, 1);
    EXPECT_EQ(r.dropped(), 0);
}

TEST(Server, WaitsForBusyMemoryInsteadOfDropping)
{
    Trace t("t");
    t.addFunction(fn(0, 600, 5.0, 1.0));
    t.addFunction(fn(1, 600, 1.0, 1.0));
    t.addInvocation(0, 0);            // holds 600 MB until t=6 s
    t.addInvocation(1, kSecond);      // needs 600 MB; waits, then runs
    const PlatformResult r = run(t, config(4, 1'000));
    EXPECT_EQ(r.served(), 2);
    EXPECT_EQ(r.dropped(), 0);
    // Second invocation waited ~5 s then cold-started (2 s).
    EXPECT_NEAR(r.latencies_sec[1], 5.0 + 2.0, 1e-6);
}

TEST(Server, TtlExpiryReleasesMemoryViaMaintenance)
{
    Trace t("t");
    t.addFunction(fn(0, 600));
    t.addFunction(fn(1, 600));
    t.addInvocation(0, 0);
    t.addInvocation(1, 15 * kMinute);  // after fn0's 10-minute TTL
    const PlatformResult r = run(t, config(4, 1'000), PolicyKind::Ttl);
    EXPECT_EQ(r.expirations, 1);
    EXPECT_EQ(r.evictions, 0);
    EXPECT_EQ(r.served(), 2);
}

TEST(Server, FifoOrderPreserved)
{
    Trace t("t");
    t.addFunction(fn(0, 100, 1.0, 0.0));
    t.addFunction(fn(1, 100, 1.0, 0.0));
    t.addInvocation(0, 0);
    t.addInvocation(1, kMillisecond);
    t.addInvocation(0, 2 * kMillisecond);
    const PlatformResult r = run(t, config(1, 1'000));
    EXPECT_EQ(r.served(), 3);
    // Completion order must follow arrival order on one core.
    ASSERT_EQ(r.latencies_sec.size(), 3u);
    EXPECT_LT(r.latencies_sec[0], r.latencies_sec[1]);
    EXPECT_LT(r.latencies_sec[1], r.latencies_sec[2]);
}

TEST(Server, PerFunctionAccountingSumsToTotals)
{
    Trace t("t");
    t.addFunction(fn(0, 200));
    t.addFunction(fn(1, 300));
    for (int i = 0; i < 20; ++i)
        t.addInvocation(static_cast<FunctionId>(i % 2), i * kSecond);
    const PlatformResult r = run(t, config(2, 600));
    std::int64_t warm = 0, cold = 0, dropped = 0;
    for (const auto& f : r.per_function) {
        warm += f.warm;
        cold += f.cold;
        dropped += f.dropped;
    }
    EXPECT_EQ(warm, r.warm_starts);
    EXPECT_EQ(cold, r.cold_starts);
    EXPECT_EQ(dropped, r.dropped());
    EXPECT_EQ(r.total(), 20);
}

TEST(Server, Deterministic)
{
    Trace t("t");
    t.addFunction(fn(0, 200));
    t.addFunction(fn(1, 300));
    for (int i = 0; i < 30; ++i)
        t.addInvocation(static_cast<FunctionId>(i % 2),
                        i * 700 * kMillisecond);
    const PlatformResult a = run(t, config(2, 600), PolicyKind::GreedyDual);
    const PlatformResult b = run(t, config(2, 600), PolicyKind::GreedyDual);
    EXPECT_EQ(a.warm_starts, b.warm_starts);
    EXPECT_EQ(a.cold_starts, b.cold_starts);
    EXPECT_EQ(a.latencies_sec, b.latencies_sec);
}

TEST(Server, HistPrewarmWorksOnPlatform)
{
    // The same HIST policy drives the platform model: a periodic
    // function is eventually served warm via prewarmed containers.
    Trace t("t");
    t.addFunction(fn(0, 100, 0.2, 2.0));
    const TimeUs iat = 5 * kMinute;
    for (int i = 0; i < 12; ++i)
        t.addInvocation(0, i * iat);
    ServerConfig c = config(4, 1'000);
    const PlatformResult r = run(t, c, PolicyKind::Hist);
    EXPECT_GT(r.prewarms, 0);
    EXPECT_GE(r.warm_starts, 8);
}

TEST(Server, PrewarmDisabledOnPlatform)
{
    Trace t("t");
    t.addFunction(fn(0, 100, 0.2, 2.0));
    for (int i = 0; i < 12; ++i)
        t.addInvocation(0, i * 5 * kMinute);
    ServerConfig c = config(4, 1'000);
    c.enable_prewarm = false;
    const PlatformResult r = run(t, c, PolicyKind::Hist);
    EXPECT_EQ(r.prewarms, 0);
}

TEST(Server, DefaultColdSlotsMatchLegacyBehaviour)
{
    // cold_start_cpu_slots = 1 must behave exactly like the plain
    // model: one core per invocation, no InitDone bookkeeping effects.
    Trace t("t");
    t.addFunction(fn(0, 100));
    t.addFunction(fn(1, 100));
    t.addInvocation(0, 0);
    t.addInvocation(1, 0);
    const PlatformResult r = run(t, config(2, 1'000));
    ASSERT_EQ(r.served(), 2);
    EXPECT_NEAR(r.latencies_sec[0], 2.0, 1e-6);
    EXPECT_NEAR(r.latencies_sec[1], 2.0, 1e-6);  // both run in parallel
}

TEST(Server, RejectsBadConfig)
{
    EXPECT_THROW(Server(nullptr, config(2, 1'000)), std::invalid_argument);
    EXPECT_THROW(Server(makePolicy(PolicyKind::Lru), config(0, 1'000)),
                 std::invalid_argument);
}

TEST(Server, RejectsUnsortedTrace)
{
    Trace t("t");
    t.addFunction(fn(0, 100));
    t.addInvocation(0, kSecond);
    t.addInvocation(0, 0);
    Server server(makePolicy(PolicyKind::Lru), config(2, 1'000));
    EXPECT_THROW(server.run(t), std::invalid_argument);
}

}  // namespace
}  // namespace faascache

#include "util/welford.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "util/rng.h"

namespace faascache {
namespace {

TEST(Welford, EmptyIsZero)
{
    Welford w;
    EXPECT_EQ(w.count(), 0);
    EXPECT_EQ(w.mean(), 0.0);
    EXPECT_EQ(w.variance(), 0.0);
    EXPECT_EQ(w.coefficientOfVariation(), 0.0);
}

TEST(Welford, SingleSample)
{
    Welford w;
    w.add(5.0);
    EXPECT_EQ(w.count(), 1);
    EXPECT_DOUBLE_EQ(w.mean(), 5.0);
    EXPECT_EQ(w.variance(), 0.0);
}

TEST(Welford, MatchesNaiveComputation)
{
    Rng rng(1);
    std::vector<double> samples;
    Welford w;
    for (int i = 0; i < 1'000; ++i) {
        const double v = rng.normal(10.0, 3.0);
        samples.push_back(v);
        w.add(v);
    }
    double mean = 0;
    for (double v : samples)
        mean += v;
    mean /= samples.size();
    double var = 0;
    for (double v : samples)
        var += (v - mean) * (v - mean);
    var /= samples.size() - 1;

    EXPECT_NEAR(w.mean(), mean, 1e-9);
    EXPECT_NEAR(w.variance(), var, 1e-9);
    EXPECT_NEAR(w.stddev(), std::sqrt(var), 1e-9);
}

TEST(Welford, ConstantSamplesHaveZeroCoV)
{
    Welford w;
    for (int i = 0; i < 10; ++i)
        w.add(42.0);
    EXPECT_EQ(w.variance(), 0.0);
    EXPECT_EQ(w.coefficientOfVariation(), 0.0);
}

TEST(Welford, CoVMatchesDefinition)
{
    Welford w;
    w.add(1.0);
    w.add(3.0);
    // mean 2, sample variance 2, stddev sqrt(2), CoV sqrt(2)/2.
    EXPECT_NEAR(w.coefficientOfVariation(), std::sqrt(2.0) / 2.0, 1e-12);
}

TEST(Welford, CoVInfiniteWhenMeanZeroButVarying)
{
    Welford w;
    w.add(-1.0);
    w.add(1.0);
    EXPECT_TRUE(std::isinf(w.coefficientOfVariation()));
}

TEST(Welford, CoVUsesAbsoluteMean)
{
    Welford pos, neg;
    pos.add(1.0);
    pos.add(3.0);
    neg.add(-1.0);
    neg.add(-3.0);
    EXPECT_NEAR(pos.coefficientOfVariation(), neg.coefficientOfVariation(),
                1e-12);
}

TEST(Welford, MergeEqualsSequential)
{
    Rng rng(2);
    Welford all, a, b;
    for (int i = 0; i < 500; ++i) {
        const double v = rng.uniform(0, 100);
        all.add(v);
        (i % 2 == 0 ? a : b).add(v);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
}

TEST(Welford, MergeWithEmpty)
{
    Welford a, empty;
    a.add(1.0);
    a.add(2.0);
    const double mean = a.mean();
    a.merge(empty);
    EXPECT_EQ(a.count(), 2);
    EXPECT_DOUBLE_EQ(a.mean(), mean);

    Welford b;
    b.merge(a);
    EXPECT_EQ(b.count(), 2);
    EXPECT_DOUBLE_EQ(b.mean(), mean);
}

TEST(Welford, ResetClears)
{
    Welford w;
    w.add(10.0);
    w.reset();
    EXPECT_EQ(w.count(), 0);
    EXPECT_EQ(w.mean(), 0.0);
}

TEST(Welford, NumericallyStableWithLargeOffset)
{
    // Classic catastrophic-cancellation scenario for naive two-pass sums.
    Welford w;
    const double offset = 1e9;
    for (double v : {4.0, 7.0, 13.0, 16.0})
        w.add(offset + v);
    EXPECT_NEAR(w.variance(), 30.0, 1e-6);
}

}  // namespace
}  // namespace faascache

#include "core/ttl_policy.h"

#include <gtest/gtest.h>

#include "core/container_pool.h"

namespace faascache {
namespace {

FunctionSpec
fn(FunctionId id, MemMb mem = 100)
{
    return makeFunction(id, "fn" + std::to_string(id), mem, fromMillis(100),
                        fromMillis(100));
}

Container&
coldUse(ContainerPool& pool, TtlPolicy& policy, const FunctionSpec& spec,
        TimeUs now)
{
    policy.onInvocationArrival(spec, now);
    Container& c = pool.add(spec, now);
    c.startInvocation(now, now + spec.cold_us);
    policy.onColdStart(c, spec, now);
    c.finishInvocation();
    return c;
}

TEST(TtlPolicy, DefaultTtlIsTenMinutes)
{
    EXPECT_EQ(TtlPolicy().ttl(), 10 * kMinute);
}

TEST(TtlPolicy, NoExpiryBeforeTtl)
{
    ContainerPool pool(1000);
    TtlPolicy policy(10 * kMinute);
    coldUse(pool, policy, fn(0), 0);
    EXPECT_TRUE(policy.expiredContainers(pool, 10 * kMinute - 1).empty());
}

TEST(TtlPolicy, ExpiresAtTtl)
{
    ContainerPool pool(1000);
    TtlPolicy policy(10 * kMinute);
    Container& c = coldUse(pool, policy, fn(0), 0);
    const auto expired = policy.expiredContainers(pool, 10 * kMinute);
    ASSERT_EQ(expired.size(), 1u);
    EXPECT_EQ(expired[0], c.id());
}

TEST(TtlPolicy, UseRefreshesLease)
{
    ContainerPool pool(1000);
    TtlPolicy policy(10 * kMinute);
    Container& c = coldUse(pool, policy, fn(0), 0);
    // Warm use at minute 5 pushes expiry to minute 15.
    policy.onInvocationArrival(fn(0), 5 * kMinute);
    c.startInvocation(5 * kMinute, 5 * kMinute + fromMillis(100));
    policy.onWarmStart(c, fn(0), 5 * kMinute);
    c.finishInvocation();
    EXPECT_TRUE(policy.expiredContainers(pool, 14 * kMinute).empty());
    EXPECT_EQ(policy.expiredContainers(pool, 15 * kMinute).size(), 1u);
}

TEST(TtlPolicy, BusyContainersNeverExpire)
{
    ContainerPool pool(1000);
    TtlPolicy policy(kMinute);
    policy.onInvocationArrival(fn(0), 0);
    Container& c = pool.add(fn(0), 0);
    c.startInvocation(0, kHour);
    policy.onColdStart(c, fn(0), 0);
    EXPECT_TRUE(policy.expiredContainers(pool, 30 * kMinute).empty());
}

TEST(TtlPolicy, PressureEvictionIsLruOrder)
{
    ContainerPool pool(10'000);
    TtlPolicy policy;
    Container& oldest = coldUse(pool, policy, fn(0), 0);
    coldUse(pool, policy, fn(1), kSecond);
    coldUse(pool, policy, fn(2), 2 * kSecond);

    const auto victims = policy.selectVictims(pool, 150, 3 * kSecond);
    ASSERT_EQ(victims.size(), 2u);
    EXPECT_EQ(victims[0], oldest.id());
}

TEST(TtlPolicy, MultipleExpirationsAtOnce)
{
    ContainerPool pool(10'000);
    TtlPolicy policy(kMinute);
    coldUse(pool, policy, fn(0), 0);
    coldUse(pool, policy, fn(1), kSecond);
    EXPECT_EQ(policy.expiredContainers(pool, kHour).size(), 2u);
}

TEST(TtlPolicy, NameIsTTL)
{
    EXPECT_EQ(TtlPolicy().name(), "TTL");
}

}  // namespace
}  // namespace faascache

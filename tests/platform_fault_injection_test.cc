#include "platform/fault_injection.h"

#include <gtest/gtest.h>

#include <limits>

#include "core/policy_factory.h"
#include "platform/server.h"

namespace faascache {
namespace {

FunctionSpec
fn(FunctionId id, MemMb mem, double warm_sec = 1.0, double init_sec = 1.0)
{
    return makeFunction(id, "fn" + std::to_string(id), mem,
                        fromSeconds(warm_sec), fromSeconds(init_sec));
}

ServerConfig
config(int cores, MemMb mem)
{
    ServerConfig c;
    c.cores = cores;
    c.memory_mb = mem;
    return c;
}

Trace
steadyTrace(int count, TimeUs gap, int functions = 1)
{
    Trace t("steady");
    for (int f = 0; f < functions; ++f)
        t.addFunction(fn(static_cast<FunctionId>(f), 100));
    for (int i = 0; i < count; ++i)
        t.addInvocation(static_cast<FunctionId>(i % functions), i * gap);
    return t;
}

TEST(FaultPlan, DefaultIsEmpty)
{
    FaultPlan plan;
    EXPECT_TRUE(plan.empty());
    plan.validate();  // a default plan is always valid
}

TEST(FaultPlan, NonEmptyWhenAnyFaultEnabled)
{
    FaultPlan crash_only;
    crash_only.crashes.push_back({0, kMinute, kMinute});
    EXPECT_FALSE(crash_only.empty());

    FaultPlan spawn_only;
    spawn_only.spawn_failure_prob = 0.1;
    EXPECT_FALSE(spawn_only.empty());

    FaultPlan straggler_only;
    straggler_only.straggler_prob = 0.1;
    EXPECT_FALSE(straggler_only.empty());

    FaultPlan stall_only;
    stall_only.reclaim_stall_prob = 0.1;
    EXPECT_FALSE(stall_only.empty());
}

TEST(FaultPlan, ValidateRejectsBadValues)
{
    {
        FaultPlan p;
        p.spawn_failure_prob = 1.5;
        EXPECT_THROW(p.validate(), std::invalid_argument);
    }
    {
        FaultPlan p;
        p.straggler_prob = -0.1;
        EXPECT_THROW(p.validate(), std::invalid_argument);
    }
    {
        FaultPlan p;
        p.straggler_prob = 0.5;
        p.straggler_multiplier = 0.5;  // would speed cold starts up
        EXPECT_THROW(p.validate(), std::invalid_argument);
    }
    {
        FaultPlan p;
        p.spawn_failure_prob = 0.5;
        p.spawn_retry_delay_us = 0;
        EXPECT_THROW(p.validate(), std::invalid_argument);
    }
    {
        FaultPlan p;
        p.reclaim_stall_prob = 0.5;
        p.reclaim_stall_us = -1;
        EXPECT_THROW(p.validate(), std::invalid_argument);
    }
    {
        FaultPlan p;
        p.crashes.push_back({0, -kSecond, 0});
        EXPECT_THROW(p.validate(), std::invalid_argument);
    }
    {
        FaultPlan p;
        p.crashes.push_back({5, kMinute, 0});
        p.validate();  // fine without a fleet size...
        EXPECT_THROW(p.validate(4), std::invalid_argument);  // ...not with
    }
}

TEST(FaultPlan, CrashesForFiltersAndSorts)
{
    FaultPlan plan;
    plan.crashes.push_back({1, 30 * kMinute, kMinute});
    plan.crashes.push_back({0, 20 * kMinute, kMinute});
    plan.crashes.push_back({1, 10 * kMinute, kMinute});
    const auto own = plan.crashesFor(1);
    ASSERT_EQ(own.size(), 2u);
    EXPECT_EQ(own[0].at_us, 10 * kMinute);
    EXPECT_EQ(own[1].at_us, 30 * kMinute);
    EXPECT_EQ(plan.crashesFor(0).size(), 1u);
    EXPECT_TRUE(plan.crashesFor(2).empty());
}

TEST(FaultPlan, CapacityLossWindows)
{
    FaultPlan plan;
    // Server 0 down [10, 20) min; server 1 down [15, 30) min: the
    // overlap [15, 20) has only 2 of 4 servers up.
    plan.crashes.push_back({0, 10 * kMinute, 10 * kMinute});
    plan.crashes.push_back({1, 15 * kMinute, 15 * kMinute});
    const auto windows = plan.capacityLossWindows(4);
    ASSERT_EQ(windows.size(), 3u);
    EXPECT_EQ(windows[0].from_us, 10 * kMinute);
    EXPECT_EQ(windows[0].until_us, 15 * kMinute);
    EXPECT_DOUBLE_EQ(windows[0].available_fraction, 0.75);
    EXPECT_EQ(windows[1].from_us, 15 * kMinute);
    EXPECT_EQ(windows[1].until_us, 20 * kMinute);
    EXPECT_DOUBLE_EQ(windows[1].available_fraction, 0.5);
    EXPECT_EQ(windows[2].from_us, 20 * kMinute);
    EXPECT_EQ(windows[2].until_us, 30 * kMinute);
    EXPECT_DOUBLE_EQ(windows[2].available_fraction, 0.75);
}

TEST(FaultPlan, PermanentCrashYieldsOpenWindow)
{
    FaultPlan plan;
    plan.crashes.push_back({0, kMinute, 0});  // never restarts
    const auto windows = plan.capacityLossWindows(2);
    ASSERT_EQ(windows.size(), 1u);
    EXPECT_EQ(windows[0].from_us, kMinute);
    EXPECT_EQ(windows[0].until_us, std::numeric_limits<TimeUs>::max());
    EXPECT_DOUBLE_EQ(windows[0].available_fraction, 0.5);
}

TEST(FaultInjector, SameSeedSameStream)
{
    FaultPlan plan;
    plan.spawn_failure_prob = 0.3;
    plan.straggler_prob = 0.3;
    plan.reclaim_stall_prob = 0.3;
    FaultInjector a(plan, 2);
    FaultInjector b(plan, 2);
    for (int i = 0; i < 200; ++i) {
        EXPECT_EQ(a.spawnFails(), b.spawnFails());
        EXPECT_EQ(a.coldStartStraggles(), b.coldStartStraggles());
        EXPECT_EQ(a.reclaimStall(), b.reclaimStall());
    }
}

TEST(FaultInjector, DistinctServersDistinctStreams)
{
    FaultPlan plan;
    plan.spawn_failure_prob = 0.5;
    FaultInjector a(plan, 0);
    FaultInjector b(plan, 1);
    int differing = 0;
    for (int i = 0; i < 200; ++i)
        differing += a.spawnFails() != b.spawnFails() ? 1 : 0;
    EXPECT_GT(differing, 0);
}

TEST(FaultInjector, DisabledFaultsDrawNothing)
{
    FaultPlan plan;  // all probabilities zero
    FaultInjector injector(plan, 0);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(injector.spawnFails());
        EXPECT_FALSE(injector.coldStartStraggles());
        EXPECT_EQ(injector.reclaimStall(), 0);
    }
}

// --- Server-level fault behaviour ---------------------------------------

PlatformResult
runWithPlan(const Trace& trace, const ServerConfig& cfg,
            const FaultPlan& plan)
{
    Server server(makePolicy(PolicyKind::GreedyDual), cfg);
    FaultInjector injector(plan, 0);
    server.setFaultInjector(&injector);
    return server.run(trace);
}

TEST(ServerFaults, EmptyPlanMatchesNoInjector)
{
    const Trace t = steadyTrace(500, 100 * kMillisecond, 8);
    const ServerConfig cfg = config(4, 600);

    Server plain(makePolicy(PolicyKind::GreedyDual), cfg);
    const PlatformResult base = plain.run(t);
    const PlatformResult faulted = runWithPlan(t, cfg, FaultPlan{});

    EXPECT_EQ(base.warm_starts, faulted.warm_starts);
    EXPECT_EQ(base.cold_starts, faulted.cold_starts);
    EXPECT_EQ(base.dropped(), faulted.dropped());
    EXPECT_EQ(base.evictions, faulted.evictions);
    EXPECT_EQ(base.latencies_sec, faulted.latencies_sec);
    EXPECT_EQ(faulted.robustness, RobustnessCounters{});
}

TEST(ServerFaults, SpawnFailuresDelayButServe)
{
    Trace t("t");
    t.addFunction(fn(0, 100));
    t.addInvocation(0, 0);
    FaultPlan plan;
    plan.spawn_failure_prob = 0.5;
    plan.spawn_retry_delay_us = 100 * kMillisecond;
    const PlatformResult r = runWithPlan(t, config(2, 1'000), plan);
    EXPECT_EQ(r.served() + r.dropped(), 1);
    if (r.robustness.spawn_failures > 0 && r.served() == 1) {
        // Each failed attempt delays the start by the holdoff.
        EXPECT_GE(r.latencies_sec[0],
                  2.0 + 0.1 * static_cast<double>(
                                  r.robustness.spawn_failures) -
                      1e-9);
    }
}

TEST(ServerFaults, CertainSpawnFailureTimesOut)
{
    Trace t("t");
    t.addFunction(fn(0, 100));
    t.addInvocation(0, 0);
    ServerConfig cfg = config(2, 1'000);
    cfg.queue_timeout_us = 2 * kSecond;
    FaultPlan plan;
    plan.spawn_failure_prob = 1.0;
    plan.spawn_retry_delay_us = 100 * kMillisecond;
    const PlatformResult r = runWithPlan(t, cfg, plan);
    EXPECT_EQ(r.served(), 0);
    EXPECT_EQ(r.dropped_timeout, 1);
    EXPECT_GT(r.robustness.spawn_failures, 0);
}

TEST(ServerFaults, StragglersInflateColdStartLatency)
{
    Trace t("t");
    t.addFunction(fn(0, 100, 1.0, 1.0));
    t.addInvocation(0, 0);
    FaultPlan plan;
    plan.straggler_prob = 1.0;
    plan.straggler_multiplier = 3.0;
    const PlatformResult r = runWithPlan(t, config(2, 1'000), plan);
    ASSERT_EQ(r.served(), 1);
    EXPECT_EQ(r.robustness.straggler_cold_starts, 1);
    // init 1 s * 3 + warm 1 s
    EXPECT_NEAR(r.latencies_sec[0], 4.0, 1e-6);
}

TEST(ServerFaults, ReclaimStallDelaysEvictingColdStart)
{
    Trace t("t");
    t.addFunction(fn(0, 600, 1.0, 1.0));
    t.addFunction(fn(1, 600, 1.0, 1.0));
    t.addInvocation(0, 0);
    // Arrives after fn0 finished; must evict fn0's container to fit.
    t.addInvocation(1, 10 * kSecond);
    FaultPlan plan;
    plan.reclaim_stall_prob = 1.0;
    plan.reclaim_stall_us = 500 * kMillisecond;
    const PlatformResult r = runWithPlan(t, config(2, 1'000), plan);
    ASSERT_EQ(r.served(), 2);
    EXPECT_EQ(r.robustness.reclaim_stalls, 1);
    EXPECT_NEAR(r.latencies_sec[1], 2.5, 1e-6);  // stall + init + warm
}

TEST(ServerFaults, CrashAbortsAndRestartRecovers)
{
    // 20 arrivals one per second; crash at 5.5 s aborts the running
    // invocation, drops queued work, and rejects arrivals until the
    // restart at 8.5 s.
    const Trace t = steadyTrace(20, kSecond);
    FaultPlan plan;
    plan.crashes.push_back({0, 5 * kSecond + 500 * kMillisecond,
                            3 * kSecond});
    const PlatformResult r = runWithPlan(t, config(2, 1'000), plan);
    EXPECT_EQ(r.robustness.crashes, 1);
    EXPECT_EQ(r.robustness.restarts, 1);
    EXPECT_GT(r.robustness.crash_flushed_containers, 0);
    EXPECT_GT(r.robustness.dropped_unavailable, 0);
    EXPECT_EQ(r.robustness.downtime_us, 3 * kSecond);
    // Conservation: every invocation is served, dropped, or aborted.
    EXPECT_EQ(r.total(),
              static_cast<std::int64_t>(t.invocations().size()));
    // Post-restart the pool is cold again.
    EXPECT_GT(r.cold_starts, 1);
}

TEST(ServerFaults, PermanentCrashChargesDowntimeToHorizon)
{
    const Trace t = steadyTrace(10, kSecond);
    FaultPlan plan;
    plan.crashes.push_back({0, 4 * kSecond, 0});  // never restarts
    ServerConfig cfg = config(2, 1'000);
    const PlatformResult r = runWithPlan(t, cfg, plan);
    EXPECT_EQ(r.robustness.crashes, 1);
    EXPECT_EQ(r.robustness.restarts, 0);
    // Horizon = last arrival + queue timeout; downtime runs to it.
    const TimeUs horizon = 9 * kSecond + cfg.queue_timeout_us;
    EXPECT_EQ(r.robustness.downtime_us, horizon - 4 * kSecond);
    EXPECT_EQ(r.total(),
              static_cast<std::int64_t>(t.invocations().size()));
}

TEST(ServerFaults, CrashExactlyAtTheRestartBoundary)
{
    // The second crash is scheduled for the precise restart instant of
    // the first: the server restarts and immediately dies again. Both
    // downtimes must be charged and the request ledger must balance.
    const Trace t = steadyTrace(30, kSecond);
    FaultPlan plan;
    plan.crashes.push_back({0, 5 * kSecond, 3 * kSecond});
    plan.crashes.push_back({0, 8 * kSecond, 3 * kSecond});
    const PlatformResult r = runWithPlan(t, config(2, 1'000), plan);

    EXPECT_EQ(r.robustness.crashes, 2);
    EXPECT_EQ(r.robustness.restarts, 2);
    EXPECT_EQ(r.robustness.downtime_us, 6 * kSecond);
    // Conservation: served + dropped (all flavours) covers the trace.
    EXPECT_EQ(r.total(),
              static_cast<std::int64_t>(t.invocations().size()));
}

TEST(ServerFaults, BackToBackCrashWindowsConserveRequests)
{
    // Two windows separated by a single second of uptime: the brief
    // recovery must actually serve (or queue) traffic, and nothing may
    // be double-dropped across the windows.
    const Trace t = steadyTrace(40, kSecond);
    FaultPlan plan;
    plan.crashes.push_back({0, 5 * kSecond, 4 * kSecond});
    plan.crashes.push_back({0, 10 * kSecond, 4 * kSecond});
    const PlatformResult r = runWithPlan(t, config(2, 1'000), plan);

    EXPECT_EQ(r.robustness.crashes, 2);
    EXPECT_EQ(r.robustness.restarts, 2);
    EXPECT_EQ(r.robustness.downtime_us, 8 * kSecond);
    EXPECT_GT(r.robustness.dropped_unavailable, 0);
    EXPECT_EQ(r.total(),
              static_cast<std::int64_t>(t.invocations().size()));
}

TEST(ServerFaults, SameSeedReproducesCounters)
{
    const Trace t = steadyTrace(300, 200 * kMillisecond, 6);
    FaultPlan plan;
    plan.spawn_failure_prob = 0.2;
    plan.straggler_prob = 0.2;
    plan.crashes.push_back({0, 20 * kSecond, 5 * kSecond});
    const ServerConfig cfg = config(2, 500);
    const PlatformResult a = runWithPlan(t, cfg, plan);
    const PlatformResult b = runWithPlan(t, cfg, plan);
    EXPECT_EQ(a.robustness, b.robustness);
    EXPECT_EQ(a.warm_starts, b.warm_starts);
    EXPECT_EQ(a.cold_starts, b.cold_starts);
    EXPECT_EQ(a.latencies_sec, b.latencies_sec);
}

TEST(ServerConfigValidation, RejectsBadValues)
{
    {
        ServerConfig c = config(2, 1'000);
        c.queue_capacity = 0;
        EXPECT_THROW(Server(makePolicy(PolicyKind::Lru), c),
                     std::invalid_argument);
    }
    {
        ServerConfig c = config(2, 0);  // no pool memory
        EXPECT_THROW(Server(makePolicy(PolicyKind::Lru), c),
                     std::invalid_argument);
    }
    {
        ServerConfig c = config(2, 1'000);
        c.queue_timeout_us = 0;
        EXPECT_THROW(Server(makePolicy(PolicyKind::Lru), c),
                     std::invalid_argument);
    }
    {
        ServerConfig c = config(2, 1'000);
        c.maintenance_interval_us = -kSecond;
        EXPECT_THROW(Server(makePolicy(PolicyKind::Lru), c),
                     std::invalid_argument);
    }
    {
        ServerConfig c = config(2, 1'000);
        c.cold_start_cpu_slots = 3;  // more than cores
        EXPECT_THROW(Server(makePolicy(PolicyKind::Lru), c),
                     std::invalid_argument);
    }
}

// --- Expanded fault model: validation ------------------------------------

/** The validate() error message must name the offending field. */
void
expectValidateError(const FaultPlan& plan, const std::string& needle,
                    std::size_t num_servers = 0)
{
    try {
        plan.validate(num_servers);
        FAIL() << "expected validate() to reject a plan mentioning \""
               << needle << "\"";
    } catch (const std::invalid_argument& e) {
        EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
            << "error message was: " << e.what();
    }
}

TEST(FaultPlanValidation, RejectsNegativeDurations)
{
    {
        FaultPlan p;
        p.crash_bursts.push_back({-kSecond, 0, 2, kSecond, 0});
        expectValidateError(p, "crash_burst 0");
    }
    {
        FaultPlan p;
        p.crash_bursts.push_back({kSecond, -kSecond, 2, kSecond, 0});
        expectValidateError(p, "window_us");
    }
    {
        FaultPlan p;
        p.crash_bursts.push_back({kSecond, 0, 0, kSecond, 0});
        expectValidateError(p, "servers == 0");
    }
    {
        FaultPlan p;
        p.partitions.push_back({0, -kSecond, kSecond});
        expectValidateError(p, "from_us");
    }
    {
        FaultPlan p;
        p.partitions.push_back({0, 2 * kSecond, kSecond});  // inverted
        expectValidateError(p, "inverted");
    }
    {
        FaultPlan p;
        p.oom_kills.push_back({0, -kSecond});
        expectValidateError(p, "oom_kill 0");
    }
}

TEST(FaultPlanValidation, RejectsOutOfRangeServers)
{
    {
        FaultPlan p;
        p.partitions.push_back({7, kSecond, kMinute});
        p.validate();  // fine without a fleet size...
        expectValidateError(p, "server 7", 4);  // ...not with
    }
    {
        FaultPlan p;
        p.oom_kills.push_back({9, kSecond});
        p.validate();
        expectValidateError(p, "server 9", 4);
    }
}

TEST(FaultPlanValidation, RejectsOverlappingCrashWindows)
{
    // Second crash lands inside the first downtime [5, 15) s.
    FaultPlan p;
    p.crashes.push_back({0, 5 * kSecond, 10 * kSecond});
    p.crashes.push_back({0, 8 * kSecond, kSecond});
    expectValidateError(p, "overlapping crash windows on server 0");
}

TEST(FaultPlanValidation, RejectsCrashAfterPermanentCrash)
{
    // The earlier crash never restarts; the later one would be
    // silently absorbed by the open-ended outage.
    FaultPlan p;
    p.crashes.push_back({0, 5 * kSecond, 0});
    p.crashes.push_back({0, 60 * kSecond, kSecond});
    expectValidateError(p, "never restarts");
}

TEST(FaultPlanValidation, AcceptsBoundaryAndDisjointWindows)
{
    // Crash exactly at the restart instant (Failure lane delivers the
    // restart first) and fully disjoint windows are both fine, in
    // either declaration order.
    FaultPlan p;
    p.crashes.push_back({0, 8 * kSecond, 3 * kSecond});
    p.crashes.push_back({0, 5 * kSecond, 3 * kSecond});
    p.crashes.push_back({1, 6 * kSecond, kSecond});
    p.validate(2);
}

TEST(FaultPlanValidation, ChecksBurstVictimsWhenFleetKnown)
{
    // A burst victim crashing inside an explicit crash's downtime must
    // be caught — overlap checking runs over the expanded schedule.
    FaultPlan p;
    p.crashes.push_back({0, kSecond, kMinute});
    CrashBurst burst;
    burst.at_us = 10 * kSecond;
    burst.window_us = 0;
    burst.servers = 1;  // the only server: guaranteed collision
    burst.restart_after_us = kSecond;
    p.crash_bursts.push_back(burst);
    expectValidateError(p, "overlapping crash windows", 1);
}

// --- Expanded fault model: burst expansion -------------------------------

TEST(FaultPlanExpansion, NoBurstsExpandsToExplicitCrashes)
{
    FaultPlan p;
    p.crashes.push_back({1, 5 * kSecond, kSecond});
    p.crashes.push_back({0, 2 * kSecond, kSecond});
    const auto expanded = p.expandedCrashes(4);
    ASSERT_EQ(expanded.size(), 2u);
    // Declaration order preserved, so fault-free-of-bursts plans keep
    // their exact event sequence numbers.
    EXPECT_EQ(expanded[0].server, 1u);
    EXPECT_EQ(expanded[1].server, 0u);
}

TEST(FaultPlanExpansion, BurstPicksDistinctServersInWindow)
{
    FaultPlan p;
    CrashBurst burst;
    burst.at_us = 10 * kSecond;
    burst.window_us = 2 * kSecond;
    burst.servers = 3;
    burst.restart_after_us = 5 * kSecond;
    p.crash_bursts.push_back(burst);
    const auto expanded = p.expandedCrashes(8);
    ASSERT_EQ(expanded.size(), 3u);
    std::vector<std::size_t> victims;
    for (const CrashEvent& c : expanded) {
        EXPECT_GE(c.at_us, 10 * kSecond);
        EXPECT_LE(c.at_us, 12 * kSecond);
        EXPECT_EQ(c.restart_after_us, 5 * kSecond);
        EXPECT_LT(c.server, 8u);
        victims.push_back(c.server);
    }
    std::sort(victims.begin(), victims.end());
    EXPECT_EQ(std::unique(victims.begin(), victims.end()), victims.end())
        << "burst victims must be distinct servers";
}

TEST(FaultPlanExpansion, ExpansionIsDeterministicAndSeedSensitive)
{
    FaultPlan p;
    CrashBurst burst;
    burst.at_us = kMinute;
    burst.window_us = 10 * kSecond;
    burst.servers = 4;
    p.crash_bursts.push_back(burst);

    const auto a = p.expandedCrashes(16);
    const auto b = p.expandedCrashes(16);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].server, b[i].server);
        EXPECT_EQ(a[i].at_us, b[i].at_us);
    }

    FaultPlan q = p;
    q.crash_bursts[0].seed = 99;
    const auto c = q.expandedCrashes(16);
    bool differs = false;
    for (std::size_t i = 0; i < a.size(); ++i)
        differs = differs || a[i].server != c[i].server ||
            a[i].at_us != c[i].at_us;
    EXPECT_TRUE(differs) << "burst seed must steer the expansion";
}

TEST(FaultPlanExpansion, BurstClampsToFleetSize)
{
    FaultPlan p;
    CrashBurst burst;
    burst.at_us = kMinute;
    burst.servers = 100;
    p.crash_bursts.push_back(burst);
    EXPECT_EQ(p.expandedCrashes(3).size(), 3u);
}

TEST(FaultPlanExpansion, CapacityLossIncludesBurstVictims)
{
    FaultPlan p;
    CrashBurst burst;
    burst.at_us = kMinute;
    burst.window_us = 0;
    burst.servers = 2;
    burst.restart_after_us = kMinute;
    p.crash_bursts.push_back(burst);
    const auto windows = p.capacityLossWindows(4);
    ASSERT_EQ(windows.size(), 1u);
    EXPECT_DOUBLE_EQ(windows[0].available_fraction, 0.5);
}

// --- Expanded fault model: OOM kills -------------------------------------

TEST(ServerFaults, OomKillAbortsFattestBusyContainer)
{
    // Two functions running concurrently; the kill at 0.5 s must pick
    // the fat one and roll its start accounting back.
    Trace t("t");
    t.addFunction(fn(0, 100, 2.0, 0.5));
    t.addFunction(fn(1, 400, 2.0, 0.5));
    t.addInvocation(0, 0);
    t.addInvocation(1, 0);
    FaultPlan plan;
    plan.oom_kills.push_back({0, 500 * kMillisecond});
    const PlatformResult r = runWithPlan(t, config(4, 1'000), plan);
    EXPECT_EQ(r.robustness.oom_kills, 1);
    EXPECT_EQ(r.robustness.crash_aborted, 1);
    // The fat function (id 1) lost its invocation; the small one kept
    // running to completion.
    EXPECT_EQ(r.per_function[1].dropped, 1);
    EXPECT_EQ(r.per_function[1].served(), 0);
    EXPECT_EQ(r.per_function[0].served(), 1);
    EXPECT_EQ(r.total(),
              static_cast<std::int64_t>(t.invocations().size()));
}

TEST(ServerFaults, OomKillWithNothingBusyIsNoOp)
{
    // The kill fires long after the only invocation finished.
    Trace t("t");
    t.addFunction(fn(0, 100, 1.0, 0.5));
    t.addInvocation(0, 0);
    FaultPlan plan;
    plan.oom_kills.push_back({0, 20 * kSecond});
    const PlatformResult r = runWithPlan(t, config(2, 1'000), plan);
    EXPECT_EQ(r.robustness.oom_kills, 0);
    EXPECT_EQ(r.served(), 1);
}

TEST(ServerFaults, OomKillFreesCoresForQueuedWork)
{
    // One core, a long-running fat invocation, a queued second request:
    // the kill must release the core and let the queue drain.
    Trace t("t");
    t.addFunction(fn(0, 400, 60.0, 0.5));
    t.addFunction(fn(1, 100, 1.0, 0.5));
    t.addInvocation(0, 0);
    t.addInvocation(1, kSecond);
    ServerConfig cfg = config(1, 1'000);
    cfg.queue_timeout_us = 60 * kSecond;
    FaultPlan plan;
    plan.oom_kills.push_back({0, 5 * kSecond});
    const PlatformResult r = runWithPlan(t, cfg, plan);
    EXPECT_EQ(r.robustness.oom_kills, 1);
    EXPECT_EQ(r.per_function[0].served(), 0);
    EXPECT_EQ(r.per_function[1].served(), 1);
    EXPECT_EQ(r.total(),
              static_cast<std::int64_t>(t.invocations().size()));
}

}  // namespace
}  // namespace faascache

// Differential determinism test for the unified event engine
// (src/engine/): every layer that schedules through EventCore — the
// trace-driven Simulator, the platform Server/Cluster, and the elastic
// provisioning loop — must produce bit-identical results when the same
// seeded workload is replayed twice. This is the contract that makes
// golden fixtures, --jobs invariance, and checkpoint byte-identity
// possible; any hidden ordering dependence (map iteration, pointer
// hashing, timestamp ties broken by allocation order) shows up here as
// a flaky mismatch.
#include <gtest/gtest.h>

#include <vector>

#include "core/policy_factory.h"
#include "platform/cluster.h"
#include "platform/experiment.h"
#include "provisioning/elastic_simulation.h"
#include "sim/simulator.h"
#include "trace/azure_model.h"
#include "util/audit.h"

namespace faascache {
namespace {

/** A seeded Azure-model workload with enough churn to exercise
 *  evictions, queueing, and timestamp ties. */
const Trace&
seededWorkload()
{
    static const Trace kTrace = [] {
        AzureModelConfig config;
        config.seed = 41;
        config.num_functions = 60;
        config.duration_us = kHour;
        config.iat_median_sec = 20.0;
        config.max_rate_per_sec = 2.0;
        config.warm_median_ms = 150.0;
        config.mem_median_mb = 128.0;
        config.mem_sigma = 0.7;
        config.mem_min_mb = 64;
        config.mem_max_mb = 512;
        config.name = "engine-differential";
        return generateAzureTrace(config);
    }();
    return kTrace;
}

void
expectSameSimResult(const SimResult& a, const SimResult& b)
{
    EXPECT_EQ(a.policy_name, b.policy_name);
    EXPECT_EQ(a.memory_mb, b.memory_mb);
    EXPECT_EQ(a.warm_starts, b.warm_starts);
    EXPECT_EQ(a.cold_starts, b.cold_starts);
    EXPECT_EQ(a.dropped, b.dropped);
    EXPECT_EQ(a.evictions, b.evictions);
    EXPECT_EQ(a.expirations, b.expirations);
    EXPECT_EQ(a.prewarms, b.prewarms);
    EXPECT_EQ(a.eviction_rounds, b.eviction_rounds);
    EXPECT_EQ(a.background_reclaims, b.background_reclaims);
    EXPECT_EQ(a.actual_exec_us, b.actual_exec_us);
    EXPECT_EQ(a.baseline_exec_us, b.baseline_exec_us);
    EXPECT_EQ(a.per_function, b.per_function);
    ASSERT_EQ(a.memory_usage.size(), b.memory_usage.size());
    for (std::size_t i = 0; i < a.memory_usage.size(); ++i) {
        EXPECT_EQ(a.memory_usage[i].time_us, b.memory_usage[i].time_us);
        EXPECT_EQ(a.memory_usage[i].used_mb, b.memory_usage[i].used_mb);
    }
}

void
expectSamePlatformResult(const PlatformResult& a, const PlatformResult& b)
{
    EXPECT_EQ(a.policy_name, b.policy_name);
    EXPECT_EQ(a.warm_starts, b.warm_starts);
    EXPECT_EQ(a.cold_starts, b.cold_starts);
    EXPECT_EQ(a.dropped_queue_full, b.dropped_queue_full);
    EXPECT_EQ(a.dropped_timeout, b.dropped_timeout);
    EXPECT_EQ(a.dropped_oversize, b.dropped_oversize);
    EXPECT_EQ(a.evictions, b.evictions);
    EXPECT_EQ(a.expirations, b.expirations);
    EXPECT_EQ(a.prewarms, b.prewarms);
    EXPECT_EQ(a.robustness.crashes, b.robustness.crashes);
    EXPECT_EQ(a.robustness.restarts, b.robustness.restarts);
    EXPECT_EQ(a.robustness.crash_aborted, b.robustness.crash_aborted);
    EXPECT_EQ(a.robustness.crash_flushed_containers,
              b.robustness.crash_flushed_containers);
    EXPECT_EQ(a.robustness.dropped_unavailable,
              b.robustness.dropped_unavailable);
    EXPECT_EQ(a.robustness.redispatch_cold_starts,
              b.robustness.redispatch_cold_starts);
    EXPECT_EQ(a.robustness.downtime_us, b.robustness.downtime_us);
    EXPECT_EQ(a.per_function, b.per_function);
    // Bit-exact latency streams, completion order included.
    ASSERT_EQ(a.latencies_sec.size(), b.latencies_sec.size());
    for (std::size_t i = 0; i < a.latencies_sec.size(); ++i)
        EXPECT_EQ(a.latencies_sec[i], b.latencies_sec[i]);
    ASSERT_EQ(a.latency_sum_sec.size(), b.latency_sum_sec.size());
    for (std::size_t i = 0; i < a.latency_sum_sec.size(); ++i)
        EXPECT_EQ(a.latency_sum_sec[i], b.latency_sum_sec[i]);
}

TEST(EngineDifferential, SimulatorReplaysBitExact)
{
    SimulatorConfig config;
    config.memory_mb = 1500.0;
    for (PolicyKind kind : {PolicyKind::GreedyDual, PolicyKind::Ttl}) {
        const SimResult a =
            simulateTrace(seededWorkload(), makePolicy(kind), config);
        const SimResult b =
            simulateTrace(seededWorkload(), makePolicy(kind), config);
        expectSameSimResult(a, b);
    }
}

TEST(EngineDifferential, ServerReplaysBitExact)
{
    // Both replays run under the runtime invariant auditor (ISSUE 8):
    // bit-identity and semantic legality are checked together.
    Auditor audit;
    ServerConfig config;
    config.cores = 2;
    config.memory_mb = 900.0;
    config.audit = &audit;
    const PlatformResult a = runPlatform(
        seededWorkload(), PolicyKind::GreedyDual, config);
    const PlatformResult b = runPlatform(
        seededWorkload(), PolicyKind::GreedyDual, config);
    expectSamePlatformResult(a, b);
    EXPECT_EQ(audit.violationCount(), 0) << audit.report();
}

TEST(EngineDifferential, FaultedClusterReplaysBitExact)
{
    // Crashes and restarts ride the engine's Failure lane; seeded
    // stochastic faults exercise the same-timestamp tie-breaks that
    // used to be a hand-rolled deferral hack. The auditor watches both
    // replays end to end.
    Auditor audit;
    ClusterConfig config;
    config.num_servers = 3;
    config.server.cores = 2;
    config.server.memory_mb = 700.0;
    config.server.audit = &audit;
    config.faults.crashes.push_back({1, 10 * kMinute, 5 * kMinute});
    config.faults.spawn_failure_prob = 0.05;
    config.faults.straggler_prob = 0.05;
    config.faults.seed = 99;

    const ClusterResult a =
        runCluster(seededWorkload(), PolicyKind::GreedyDual, config);
    const ClusterResult b =
        runCluster(seededWorkload(), PolicyKind::GreedyDual, config);
    EXPECT_EQ(a.retries, b.retries);
    EXPECT_EQ(a.failovers, b.failovers);
    EXPECT_EQ(a.shed_requests, b.shed_requests);
    EXPECT_EQ(a.failed_requests, b.failed_requests);
    ASSERT_EQ(a.servers.size(), b.servers.size());
    for (std::size_t i = 0; i < a.servers.size(); ++i)
        expectSamePlatformResult(a.servers[i], b.servers[i]);
    EXPECT_EQ(audit.violationCount(), 0) << audit.report();
}

TEST(EngineDifferential, ElasticSimulationReplaysBitExact)
{
    ControllerConfig controller;
    controller.target_miss_speed = 1.0;
    controller.min_size_mb = 512;
    controller.max_size_mb = 8 * 1024;
    ElasticConfig elastic;
    elastic.initial_size_mb = 2000;

    const ElasticResult a = runElasticSimulation(
        seededWorkload(), makePolicy(PolicyKind::GreedyDual), controller,
        elastic);
    const ElasticResult b = runElasticSimulation(
        seededWorkload(), makePolicy(PolicyKind::GreedyDual), controller,
        elastic);
    ASSERT_EQ(a.timeline.size(), b.timeline.size());
    for (std::size_t i = 0; i < a.timeline.size(); ++i) {
        EXPECT_EQ(a.timeline[i].time_us, b.timeline[i].time_us);
        EXPECT_EQ(a.timeline[i].cache_size_mb,
                  b.timeline[i].cache_size_mb);
        EXPECT_EQ(a.timeline[i].arrival_rate, b.timeline[i].arrival_rate);
        EXPECT_EQ(a.timeline[i].miss_speed, b.timeline[i].miss_speed);
        EXPECT_EQ(a.timeline[i].smoothed_arrival,
                  b.timeline[i].smoothed_arrival);
    }
    expectSameSimResult(a.sim, b.sim);
}

TEST(EngineDifferential, SweepReplaysBitExactAcrossWorkerCounts)
{
    // The same grid through 1 worker and 4 workers must merge to the
    // same submission-order results — the --jobs invariance the benches
    // rely on.
    std::vector<PlatformCell> cells;
    for (double memory_mb : {600.0, 1200.0}) {
        PlatformCell cell;
        cell.trace = &seededWorkload();
        cell.server.cores = 2;
        cell.server.memory_mb = memory_mb;
        cells.push_back(cell);
    }
    const std::vector<PlatformResult> serial = runPlatformSweep(cells, 1);
    const std::vector<PlatformResult> parallel = runPlatformSweep(cells, 4);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i)
        expectSamePlatformResult(serial[i], parallel[i]);
}

}  // namespace
}  // namespace faascache

#include "core/function_stats.h"

#include <gtest/gtest.h>

namespace faascache {
namespace {

TEST(FunctionStats, DefaultsAreZero)
{
    FunctionStatsTable table;
    const FunctionStats& s = std::as_const(table).of(7);
    EXPECT_EQ(s.frequency, 0);
    EXPECT_EQ(s.total_invocations, 0);
    EXPECT_EQ(s.last_arrival_us, -1);
    // Const lookup must not create entries.
    EXPECT_EQ(table.size(), 0u);
}

TEST(FunctionStats, RecordArrivalUpdatesAll)
{
    FunctionStatsTable table;
    table.recordArrival(1, 1000);
    table.recordArrival(1, 2000);
    const FunctionStats& s = table.of(1);
    EXPECT_EQ(s.frequency, 2);
    EXPECT_EQ(s.total_invocations, 2);
    EXPECT_EQ(s.last_arrival_us, 2000);
}

TEST(FunctionStats, ResetFrequencyKeepsTotals)
{
    FunctionStatsTable table;
    table.recordArrival(1, 1000);
    table.recordArrival(1, 2000);
    table.resetFrequency(1);
    const FunctionStats& s = table.of(1);
    EXPECT_EQ(s.frequency, 0);
    EXPECT_EQ(s.total_invocations, 2);
    EXPECT_EQ(s.last_arrival_us, 2000);
}

TEST(FunctionStats, ResetUnknownFunctionIsNoop)
{
    FunctionStatsTable table;
    table.resetFrequency(99);
    EXPECT_EQ(table.size(), 0u);
}

TEST(FunctionStats, IndependentPerFunction)
{
    FunctionStatsTable table;
    table.recordArrival(1, 10);
    table.recordArrival(2, 20);
    table.recordArrival(2, 30);
    EXPECT_EQ(table.of(1).frequency, 1);
    EXPECT_EQ(table.of(2).frequency, 2);
    EXPECT_EQ(table.size(), 2u);
}

}  // namespace
}  // namespace faascache

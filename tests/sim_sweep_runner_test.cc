// Differential tests of the parallel sweep engine: for every registered
// policy, the SweepRunner at jobs = 1, 2, and 8 must produce SimResults
// byte-identical (field-by-field, memory-usage samples and drop counts
// included) to a direct serial Simulator loop over the same grid. Also
// covers the per-cell seed derivation and cell validation. The tsan CI
// job runs this suite to catch races in result accumulation.
#include "sim/sweep_runner.h"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>
#include <vector>

#include "core/policy_factory.h"
#include "trace/azure_model.h"

namespace faascache {
namespace {

/** Small but non-trivial workload; tight sizes force drops/evictions. */
const Trace&
testTrace()
{
    static const Trace kTrace = [] {
        AzureModelConfig config;
        config.seed = 7;
        config.num_functions = 120;
        config.duration_us = 20 * kMinute;
        config.iat_median_sec = 30.0;
        config.max_rate_per_sec = 1.0;
        config.name = "sweep-differential";
        return generateAzureTrace(config);
    }();
    return kTrace;
}

std::vector<SweepCell>
policyGrid()
{
    std::vector<SweepCell> cells;
    // A constrained size (drops + evictions) and a roomier one, with
    // memory sampling on so the sample timeline is part of the diff.
    for (MemMb memory_mb : {600.0, 4096.0}) {
        for (PolicyKind kind : allPolicyKinds()) {
            SweepCell cell = makeCell(testTrace(), kind, memory_mb);
            cell.sim.memory_sample_interval_us = kMinute;
            cells.push_back(std::move(cell));
        }
    }
    return cells;
}

/** The reference: the same grid through a plain serial loop. */
std::vector<SimResult>
serialReference(const std::vector<SweepCell>& cells)
{
    std::vector<SimResult> results;
    for (const SweepCell& cell : cells)
        results.push_back(
            simulateTrace(*cell.trace, cell.make_policy(), cell.sim));
    return results;
}

void
expectIdentical(const std::vector<SimResult>& serial,
                const std::vector<SimResult>& parallel)
{
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        SCOPED_TRACE("cell " + std::to_string(i) + " (" +
                     serial[i].policy_name + ")");
        // Spot-check the interesting fields first for readable failures,
        // then require full structural equality.
        EXPECT_EQ(serial[i].policy_name, parallel[i].policy_name);
        EXPECT_EQ(serial[i].warm_starts, parallel[i].warm_starts);
        EXPECT_EQ(serial[i].cold_starts, parallel[i].cold_starts);
        EXPECT_EQ(serial[i].dropped, parallel[i].dropped);
        EXPECT_EQ(serial[i].memory_usage.size(),
                  parallel[i].memory_usage.size());
        EXPECT_TRUE(serial[i] == parallel[i]);
    }
}

TEST(SweepRunner, MatchesSerialLoopAtJobs1)
{
    const std::vector<SweepCell> cells = policyGrid();
    expectIdentical(serialReference(cells), runSweep(cells, 1));
}

TEST(SweepRunner, MatchesSerialLoopAtJobs2)
{
    const std::vector<SweepCell> cells = policyGrid();
    expectIdentical(serialReference(cells), runSweep(cells, 2));
}

TEST(SweepRunner, MatchesSerialLoopAtJobs8)
{
    const std::vector<SweepCell> cells = policyGrid();
    expectIdentical(serialReference(cells), runSweep(cells, 8));
}

TEST(SweepRunner, GridExercisesDropsAndSamples)
{
    // Guard the differential's coverage: the constrained cells must
    // actually drop requests and record memory samples, or the
    // "including drops and samples" claim above is vacuous.
    const std::vector<SimResult> results = runSweep(policyGrid(), 2);
    std::int64_t total_drops = 0;
    std::size_t total_samples = 0;
    for (const SimResult& r : results) {
        total_drops += r.dropped;
        total_samples += r.memory_usage.size();
    }
    EXPECT_GT(total_drops, 0);
    EXPECT_GT(total_samples, 0u);
}

TEST(SweepRunner, ReusableAcrossRuns)
{
    const std::vector<SweepCell> cells = policyGrid();
    SweepRunner runner(2);
    EXPECT_EQ(runner.jobs(), 2u);
    const std::vector<SimResult> first = runner.run(cells);
    const std::vector<SimResult> second = runner.run(cells);
    ASSERT_EQ(first.size(), second.size());
    for (std::size_t i = 0; i < first.size(); ++i)
        EXPECT_TRUE(first[i] == second[i]);
}

TEST(SweepRunner, RejectsCellWithoutTrace)
{
    SweepCell cell;
    cell.make_policy = []() { return makePolicy(PolicyKind::Lru); };
    EXPECT_THROW(runSweep({cell}, 1), std::invalid_argument);
}

TEST(SweepRunner, RejectsCellWithoutPolicy)
{
    SweepCell cell;
    cell.trace = &testTrace();
    EXPECT_THROW(runSweep({cell}, 1), std::invalid_argument);
}

TEST(SweepRunner, MakeCellCarriesConfig)
{
    PolicyConfig config;
    config.ttl_us = 3 * kMinute;
    const SweepCell cell =
        makeCell(testTrace(), PolicyKind::Ttl, 2048.0, config);
    EXPECT_EQ(cell.trace, &testTrace());
    EXPECT_DOUBLE_EQ(cell.sim.memory_mb, 2048.0);
    EXPECT_EQ(cell.make_policy()->name(), "TTL");
}

TEST(CellSeed, StableAndPositionIndependent)
{
    // A cell's seed depends only on (base, key): recomputing it later,
    // in any order, with any number of other cells derived in between,
    // gives the same value.
    const std::uint64_t a = deriveCellSeed(2021, 5);
    for (std::uint64_t key = 0; key < 100; ++key)
        (void)deriveCellSeed(2021, key);
    EXPECT_EQ(deriveCellSeed(2021, 5), a);
}

TEST(CellSeed, DistinctKeysGiveDistinctSeeds)
{
    std::set<std::uint64_t> seeds;
    for (std::uint64_t key = 0; key < 1000; ++key)
        seeds.insert(deriveCellSeed(2021, key));
    EXPECT_EQ(seeds.size(), 1000u);
}

TEST(CellSeed, DistinctBasesGiveDistinctStreams)
{
    std::set<std::uint64_t> seeds;
    for (std::uint64_t base = 0; base < 1000; ++base)
        seeds.insert(deriveCellSeed(base, 3));
    EXPECT_EQ(seeds.size(), 1000u);
}

TEST(CellSeed, AsymmetricInBaseAndKey)
{
    EXPECT_NE(deriveCellSeed(1, 2), deriveCellSeed(2, 1));
}

}  // namespace
}  // namespace faascache

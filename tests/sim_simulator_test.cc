#include "sim/simulator.h"

#include <gtest/gtest.h>

#include "core/greedy_dual.h"
#include "core/histogram_policy.h"
#include "core/lru_policy.h"
#include "core/policy_factory.h"
#include "core/ttl_policy.h"

namespace faascache {
namespace {

FunctionSpec
fn(FunctionId id, MemMb mem, double warm_ms = 100, double init_ms = 400)
{
    return makeFunction(id, "fn" + std::to_string(id), mem,
                        fromMillis(warm_ms), fromMillis(init_ms));
}

SimulatorConfig
config(MemMb mem)
{
    SimulatorConfig c;
    c.memory_mb = mem;
    c.memory_sample_interval_us = 0;
    return c;
}

TEST(Simulator, FirstInvocationIsCold)
{
    Trace t("t");
    t.addFunction(fn(0, 100));
    t.addInvocation(0, 0);
    const SimResult r =
        simulateTrace(t, std::make_unique<LruPolicy>(), config(1000));
    EXPECT_EQ(r.cold_starts, 1);
    EXPECT_EQ(r.warm_starts, 0);
    EXPECT_EQ(r.dropped, 0);
}

TEST(Simulator, ReuseIsWarm)
{
    Trace t("t");
    t.addFunction(fn(0, 100));
    t.addInvocation(0, 0);
    t.addInvocation(0, kSecond);  // after the cold run finished (500 ms)
    const SimResult r =
        simulateTrace(t, std::make_unique<LruPolicy>(), config(1000));
    EXPECT_EQ(r.cold_starts, 1);
    EXPECT_EQ(r.warm_starts, 1);
}

TEST(Simulator, ConcurrentInvocationsNeedTwoContainers)
{
    Trace t("t");
    t.addFunction(fn(0, 100, /*warm_ms=*/1000, /*init_ms=*/1000));
    t.addInvocation(0, 0);
    t.addInvocation(0, fromMillis(100));  // first still running (cold 2 s)
    const SimResult r =
        simulateTrace(t, std::make_unique<LruPolicy>(), config(1000));
    EXPECT_EQ(r.cold_starts, 2);
    EXPECT_EQ(r.warm_starts, 0);
}

TEST(Simulator, ColdWhenOnlyBusyContainerExists)
{
    // Second invocation arrives while the single container is busy, and
    // memory only allows one more: served cold in a second container.
    Trace t("t");
    t.addFunction(fn(0, 100, 1000, 1000));
    t.addInvocation(0, 0);
    t.addInvocation(0, fromMillis(500));
    const SimResult r =
        simulateTrace(t, std::make_unique<LruPolicy>(), config(200));
    EXPECT_EQ(r.cold_starts, 2);
}

TEST(Simulator, DropWhenMemoryUnavailable)
{
    // Pool of 150 MB: one 100 MB container busy; a second 100 MB request
    // cannot fit and nothing is evictable.
    Trace t("t");
    t.addFunction(fn(0, 100, 10'000, 0));
    t.addInvocation(0, 0);
    t.addInvocation(0, kSecond);  // first runs until 10 s
    const SimResult r =
        simulateTrace(t, std::make_unique<LruPolicy>(), config(150));
    EXPECT_EQ(r.cold_starts, 1);
    EXPECT_EQ(r.dropped, 1);
    EXPECT_EQ(r.per_function[0].dropped, 1);
}

TEST(Simulator, OversizedFunctionAlwaysDrops)
{
    Trace t("t");
    t.addFunction(fn(0, 5'000));
    t.addInvocation(0, 0);
    t.addInvocation(0, kSecond);
    const SimResult r =
        simulateTrace(t, std::make_unique<LruPolicy>(), config(1000));
    EXPECT_EQ(r.dropped, 2);
    EXPECT_EQ(r.served(), 0);
}

TEST(Simulator, EvictionMakesRoom)
{
    Trace t("t");
    t.addFunction(fn(0, 600));
    t.addFunction(fn(1, 600));
    t.addInvocation(0, 0);
    t.addInvocation(1, kSecond);  // forces eviction of fn0's container
    const SimResult r =
        simulateTrace(t, std::make_unique<LruPolicy>(), config(1000));
    EXPECT_EQ(r.cold_starts, 2);
    EXPECT_EQ(r.dropped, 0);
    EXPECT_EQ(r.evictions, 1);
}

TEST(Simulator, TtlExpirationsCounted)
{
    Trace t("t");
    t.addFunction(fn(0, 100));
    t.addFunction(fn(1, 100));
    t.addInvocation(0, 0);
    t.addInvocation(1, 20 * kMinute);  // fn0's container expired by now
    const SimResult r =
        simulateTrace(t, std::make_unique<TtlPolicy>(), config(1000));
    EXPECT_EQ(r.expirations, 1);
    EXPECT_EQ(r.cold_starts, 2);
}

TEST(Simulator, TtlCausesColdStartAfterExpiry)
{
    Trace t("t");
    t.addFunction(fn(0, 100));
    t.addInvocation(0, 0);
    t.addInvocation(0, 20 * kMinute);
    const SimResult ttl =
        simulateTrace(t, std::make_unique<TtlPolicy>(), config(1000));
    EXPECT_EQ(ttl.cold_starts, 2);

    // A resource-conserving policy keeps it warm instead.
    const SimResult lru =
        simulateTrace(t, std::make_unique<LruPolicy>(), config(1000));
    EXPECT_EQ(lru.cold_starts, 1);
    EXPECT_EQ(lru.warm_starts, 1);
}

TEST(Simulator, ExecTimeAccounting)
{
    Trace t("t");
    t.addFunction(fn(0, 100, 100, 400));  // warm 100 ms, cold 500 ms
    t.addInvocation(0, 0);
    t.addInvocation(0, kSecond);
    const SimResult r =
        simulateTrace(t, std::make_unique<LruPolicy>(), config(1000));
    EXPECT_EQ(r.baseline_exec_us, 2 * fromMillis(100));
    EXPECT_EQ(r.actual_exec_us, fromMillis(500) + fromMillis(100));
    EXPECT_NEAR(r.execTimeIncreasePercent(), 100.0 * 400.0 / 200.0, 1e-9);
}

TEST(Simulator, ColdStartPercent)
{
    Trace t("t");
    t.addFunction(fn(0, 100));
    for (int i = 0; i < 4; ++i)
        t.addInvocation(0, i * kSecond);
    const SimResult r =
        simulateTrace(t, std::make_unique<LruPolicy>(), config(1000));
    EXPECT_EQ(r.cold_starts, 1);
    EXPECT_EQ(r.warm_starts, 3);
    EXPECT_NEAR(r.coldStartPercent(), 25.0, 1e-9);
}

TEST(Simulator, MemoryNeverExceedsCapacityWithIdleWorkload)
{
    Trace t("t");
    for (int i = 0; i < 8; ++i)
        t.addFunction(fn(static_cast<FunctionId>(i), 100));
    for (int i = 0; i < 64; ++i)
        t.addInvocation(static_cast<FunctionId>(i % 8), i * kSecond);
    SimulatorConfig c = config(350);
    Simulator sim(t, std::make_unique<GreedyDualPolicy>(), c);
    while (!sim.done()) {
        sim.step();
        EXPECT_LE(sim.pool().usedMb(), c.memory_mb + 1e-9);
    }
}

TEST(Simulator, StepApiMatchesRun)
{
    Trace t("t");
    t.addFunction(fn(0, 100));
    t.addFunction(fn(1, 150));
    for (int i = 0; i < 20; ++i)
        t.addInvocation(static_cast<FunctionId>(i % 2), i * kSecond);

    const SimResult whole =
        simulateTrace(t, std::make_unique<GreedyDualPolicy>(), config(300));
    Simulator stepper(t, std::make_unique<GreedyDualPolicy>(), config(300));
    while (!stepper.done())
        stepper.step();
    EXPECT_EQ(stepper.result().cold_starts, whole.cold_starts);
    EXPECT_EQ(stepper.result().warm_starts, whole.warm_starts);
    EXPECT_EQ(stepper.result().dropped, whole.dropped);
}

TEST(Simulator, ResizeShrinkEvictsIdle)
{
    Trace t("t");
    t.addFunction(fn(0, 400));
    t.addFunction(fn(1, 400));
    t.addInvocation(0, 0);
    t.addInvocation(1, kSecond);
    t.addInvocation(0, kMinute);
    Simulator sim(t, std::make_unique<LruPolicy>(), config(1000));
    sim.step();
    sim.step();
    EXPECT_DOUBLE_EQ(sim.pool().usedMb(), 800.0);
    sim.resize(500);
    EXPECT_LE(sim.pool().usedMb(), 500.0);
    EXPECT_DOUBLE_EQ(sim.pool().capacityMb(), 500.0);
}

TEST(Simulator, ResizeGrowAllowsMoreContainers)
{
    Trace t("t");
    t.addFunction(fn(0, 400));
    t.addFunction(fn(1, 400));
    t.addInvocation(0, 0);
    t.addInvocation(1, kSecond);
    t.addInvocation(0, 2 * kSecond);
    Simulator sim(t, std::make_unique<LruPolicy>(), config(500));
    sim.step();
    sim.resize(1000);
    while (!sim.done())
        sim.step();
    // With 1000 MB both functions stay resident: third invocation warm.
    EXPECT_EQ(sim.result().warm_starts, 1);
    EXPECT_EQ(sim.result().evictions, 0);
}

TEST(Simulator, ResizeRejectsNonPositive)
{
    Trace t("t");
    t.addFunction(fn(0, 100));
    t.addInvocation(0, 0);
    Simulator sim(t, std::make_unique<LruPolicy>(), config(500));
    EXPECT_THROW(sim.resize(0), std::invalid_argument);
}

TEST(Simulator, RejectsUnsortedTrace)
{
    Trace t("t");
    t.addFunction(fn(0, 100));
    t.addInvocation(0, kSecond);
    t.addInvocation(0, 0);
    EXPECT_THROW(
        Simulator(t, std::make_unique<LruPolicy>(), config(1000)),
        std::invalid_argument);
}

TEST(Simulator, RejectsNullPolicy)
{
    Trace t("t");
    t.addFunction(fn(0, 100));
    EXPECT_THROW(Simulator(t, nullptr, config(1000)),
                 std::invalid_argument);
}

TEST(Simulator, MemorySamplingCoversTrace)
{
    Trace t("t");
    t.addFunction(fn(0, 100));
    for (int i = 0; i < 10; ++i)
        t.addInvocation(0, i * kMinute);
    SimulatorConfig c = config(1000);
    c.memory_sample_interval_us = kMinute;
    const SimResult r =
        simulateTrace(t, std::make_unique<LruPolicy>(), c);
    ASSERT_GE(r.memory_usage.size(), 10u);
    EXPECT_EQ(r.memory_usage.front().time_us, 0);
    for (std::size_t i = 1; i < r.memory_usage.size(); ++i) {
        EXPECT_EQ(r.memory_usage[i].time_us - r.memory_usage[i - 1].time_us,
                  kMinute);
    }
}

TEST(Simulator, HistPrewarmProducesWarmStart)
{
    // A perfectly periodic function under HIST: once the histogram is
    // trusted, containers are released after execution and prewarmed
    // before the next arrival, which then hits warm.
    Trace t("t");
    t.addFunction(fn(0, 100, 200, 2000));
    const TimeUs iat = 5 * kMinute;
    for (int i = 0; i < 12; ++i)
        t.addInvocation(0, i * iat);
    SimulatorConfig c = config(1000);
    const SimResult r =
        simulateTrace(t, std::make_unique<HistogramPolicy>(), c);
    EXPECT_GT(r.prewarms, 0);
    // Later invocations are all warm.
    EXPECT_GE(r.warm_starts, 8);
}

TEST(Simulator, PrewarmDisabledByConfig)
{
    Trace t("t");
    t.addFunction(fn(0, 100, 200, 2000));
    for (int i = 0; i < 12; ++i)
        t.addInvocation(0, i * 5 * kMinute);
    SimulatorConfig c = config(1000);
    c.enable_prewarm = false;
    const SimResult r =
        simulateTrace(t, std::make_unique<HistogramPolicy>(), c);
    EXPECT_EQ(r.prewarms, 0);
}

TEST(Simulator, PerFunctionOutcomesSumToTotals)
{
    Trace t("t");
    for (int i = 0; i < 4; ++i)
        t.addFunction(fn(static_cast<FunctionId>(i), 100 + 50.0 * i));
    for (int i = 0; i < 50; ++i)
        t.addInvocation(static_cast<FunctionId>(i % 4),
                        i * 500 * kMillisecond);
    const SimResult r =
        simulateTrace(t, std::make_unique<GreedyDualPolicy>(), config(400));
    std::int64_t warm = 0, cold = 0, dropped = 0;
    for (const auto& f : r.per_function) {
        warm += f.warm;
        cold += f.cold;
        dropped += f.dropped;
    }
    EXPECT_EQ(warm, r.warm_starts);
    EXPECT_EQ(cold, r.cold_starts);
    EXPECT_EQ(dropped, r.dropped);
    EXPECT_EQ(r.total(),
              static_cast<std::int64_t>(t.invocations().size()));
}

TEST(Simulator, RejectsBadConfig)
{
    Trace t("t");
    t.addFunction(fn(0, 100));
    t.addInvocation(0, 0);
    {
        SimulatorConfig c = config(0);  // no memory
        EXPECT_THROW(Simulator(t, makePolicy(PolicyKind::Lru), c),
                     std::invalid_argument);
    }
    {
        SimulatorConfig c = config(1'000);
        c.memory_sample_interval_us = -kSecond;
        EXPECT_THROW(Simulator(t, makePolicy(PolicyKind::Lru), c),
                     std::invalid_argument);
    }
    {
        SimulatorConfig c = config(1'000);
        c.background_reclaim_interval_us = kMinute;
        c.background_free_target_mb = 0;
        EXPECT_THROW(Simulator(t, makePolicy(PolicyKind::Lru), c),
                     std::invalid_argument);
    }
}

}  // namespace
}  // namespace faascache

/**
 * @file
 * `trace_compile` — the `.ftrace` trace compiler (DESIGN.md §4h).
 *
 * Compiles workloads into the streaming-friendly columnar `.ftrace`
 * format and inspects/round-trips existing files:
 *
 *   trace_compile --csv in.csv -o out.ftrace [--chunk N]
 *       Compile a faascache-trace CSV (trace/trace_io.h). Malformed
 *       rows are reported with their 1-based line number.
 *
 *   trace_compile --generate SPEC -o out.ftrace [--chunk N]
 *       Compile a synthetic workload directly from its streaming
 *       generator — the invocation vector is never materialized, so
 *       arbitrarily long traces compile in O(functions) memory.
 *       SPEC is "azure[:key=value,...]" over AzureModelConfig, e.g.
 *         azure:num_functions=400,duration_us=7200000000,seed=7
 *       Keys: seed, num_functions, duration_us, iat_median_sec,
 *       iat_sigma, max_rate_per_sec, mem_median_mb, diurnal,
 *       diurnal_peak_to_mean, drop_single, name.
 *
 *   trace_compile --verify file.ftrace
 *       Open the file and stream every chunk through the checksum /
 *       sortedness validation; exit nonzero on the first corruption.
 *
 *   trace_compile --dump file.ftrace
 *       Print header fields and the function catalog.
 *
 *   trace_compile --emit-csv file.ftrace -o out.csv
 *       Decompile back to the CSV format (materializes the trace).
 *
 *   trace_compile --replay file.ftrace [--policy GD] [--memory-mb M]
 *       Stream the file through the keep-alive simulator and print a
 *       one-line result digest (smoke test for CI).
 */
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <memory>
#include <string>
#include <vector>

#include "core/policy_factory.h"
#include "sim/simulator.h"
#include "trace/azure_model.h"
#include "trace/ftrace_format.h"
#include "trace/generated_source.h"
#include "trace/invocation_source.h"
#include "trace/trace.h"
#include "trace/trace_io.h"

namespace {

using namespace faascache;

[[noreturn]] void
usage(const char* argv0)
{
    std::fprintf(
        stderr,
        "usage: %s MODE [options]\n"
        "modes:\n"
        "  --csv IN.csv -o OUT.ftrace [--chunk N]   compile CSV\n"
        "  --generate SPEC -o OUT.ftrace [--chunk N]\n"
        "        SPEC = azure[:key=value,...] (streaming generation)\n"
        "  --verify FILE.ftrace                     validate all chunks\n"
        "  --dump FILE.ftrace                       print header+catalog\n"
        "  --emit-csv FILE.ftrace -o OUT.csv        decompile to CSV\n"
        "  --replay FILE.ftrace [--policy GD] [--memory-mb M]\n"
        "        stream through the simulator, print a digest\n",
        argv0);
    std::exit(2);
}

[[noreturn]] void
die(const std::string& message)
{
    std::fprintf(stderr, "trace_compile: %s\n", message.c_str());
    std::exit(1);
}

std::uint64_t
parseU64(const std::string& key, const std::string& value)
{
    try {
        std::size_t used = 0;
        const unsigned long long parsed = std::stoull(value, &used);
        if (used != value.size())
            throw std::invalid_argument(value);
        return parsed;
    } catch (const std::exception&) {
        die("--generate: key '" + key + "': bad integer '" + value + "'");
    }
}

double
parseF64(const std::string& key, const std::string& value)
{
    try {
        std::size_t used = 0;
        const double parsed = std::stod(value, &used);
        if (used != value.size())
            throw std::invalid_argument(value);
        return parsed;
    } catch (const std::exception&) {
        die("--generate: key '" + key + "': bad number '" + value + "'");
    }
}

/** "azure[:k=v,...]" → a streaming generator source. */
std::unique_ptr<InvocationSource>
makeGeneratedSource(const std::string& spec)
{
    const std::size_t colon = spec.find(':');
    const std::string family = spec.substr(0, colon);
    if (family != "azure")
        die("--generate: unknown generator family '" + family +
            "' (supported: azure)");
    AzureModelConfig config;
    std::string rest =
        colon == std::string::npos ? "" : spec.substr(colon + 1);
    while (!rest.empty()) {
        const std::size_t comma = rest.find(',');
        const std::string pair = rest.substr(0, comma);
        rest = comma == std::string::npos ? "" : rest.substr(comma + 1);
        const std::size_t eq = pair.find('=');
        if (eq == std::string::npos)
            die("--generate: expected key=value, got '" + pair + "'");
        const std::string key = pair.substr(0, eq);
        const std::string value = pair.substr(eq + 1);
        if (key == "seed")
            config.seed = parseU64(key, value);
        else if (key == "num_functions")
            config.num_functions =
                static_cast<std::size_t>(parseU64(key, value));
        else if (key == "duration_us")
            config.duration_us =
                static_cast<TimeUs>(parseU64(key, value));
        else if (key == "iat_median_sec")
            config.iat_median_sec = parseF64(key, value);
        else if (key == "iat_sigma")
            config.iat_sigma = parseF64(key, value);
        else if (key == "max_rate_per_sec")
            config.max_rate_per_sec = parseF64(key, value);
        else if (key == "mem_median_mb")
            config.mem_median_mb = parseF64(key, value);
        else if (key == "diurnal")
            config.diurnal = parseU64(key, value) != 0;
        else if (key == "diurnal_peak_to_mean")
            config.diurnal_peak_to_mean = parseF64(key, value);
        else if (key == "drop_single")
            config.drop_single_invocation_functions =
                parseU64(key, value) != 0;
        else if (key == "name")
            config.name = value;
        else
            die("--generate: unknown key '" + key + "'");
    }
    return makeAzureSource(config);
}

int
compileSource(InvocationSource& source, const std::string& out_path,
              std::uint32_t chunk_capacity)
{
    const std::size_t written =
        writeFtraceFile(out_path, source, chunk_capacity);
    std::printf("compiled %s: %zu functions, %zu invocations\n",
                out_path.c_str(), source.functions().size(), written);
    return 0;
}

int
verifyFile(const std::string& path)
{
    FtraceSource source(path);
    // Draining the cursor touches every chunk, which runs the lazy
    // checksum + count + sortedness validation over the whole file.
    Invocation inv;
    std::size_t count = 0;
    while (source.next(inv))
        ++count;
    std::printf("%s: ok (%zu functions, %zu invocations, %llu chunks "
                "of %u)\n",
                path.c_str(), source.functions().size(), count,
                static_cast<unsigned long long>(source.numChunks()),
                source.chunkCapacity());
    return 0;
}

int
dumpFile(const std::string& path)
{
    FtraceSource source(path);
    const SourceCountHint hint = source.countHint();
    std::printf("file:            %s\n", path.c_str());
    std::printf("name:            %s\n", source.name().c_str());
    std::printf("num_functions:   %zu\n", source.functions().size());
    std::printf("num_invocations: %zu\n", hint.count);
    std::printf("chunk_capacity:  %u\n", source.chunkCapacity());
    std::printf("num_chunks:      %llu\n",
                static_cast<unsigned long long>(source.numChunks()));
    for (const FunctionSpec& spec : source.functions()) {
        std::printf(
            "function %u %s mem=%.1fMB warm=%lldus cold=%lldus "
            "cpu=%.2f io=%.2f\n",
            spec.id, spec.name.c_str(), spec.mem_mb,
            static_cast<long long>(spec.warm_us),
            static_cast<long long>(spec.cold_us), spec.cpu_units,
            spec.io_units);
    }
    return 0;
}

int
emitCsv(const std::string& path, const std::string& out_path)
{
    FtraceSource source(path);
    const Trace trace = materializeSource(source);
    saveTraceFile(trace, out_path);
    std::printf("wrote %s: %zu functions, %zu invocations\n",
                out_path.c_str(), trace.functions().size(),
                trace.invocations().size());
    return 0;
}

int
replayFile(const std::string& path, const std::string& policy_name,
           double memory_mb)
{
    FtraceSource source(path);
    const PolicyKind kind = policyKindFromName(policy_name);
    SimulatorConfig config;
    config.memory_mb = memory_mb;
    const SimResult result =
        simulateSource(source, makePolicy(kind), config);
    std::printf("%s policy=%s memory=%.0fMB warm=%lld cold=%lld "
                "dropped=%lld cold%%=%.2f\n",
                path.c_str(), result.policy_name.c_str(),
                result.memory_mb,
                static_cast<long long>(result.warm_starts),
                static_cast<long long>(result.cold_starts),
                static_cast<long long>(result.dropped),
                result.coldStartPercent());
    return 0;
}

}  // namespace

int
main(int argc, char** argv)
{
    std::string mode, input, output, spec;
    std::string policy = "GD";
    double memory_mb = 4096.0;
    std::uint32_t chunk_capacity = ftrace::kDefaultChunkCapacity;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&](const char* flag) -> std::string {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "trace_compile: %s needs a value\n",
                             flag);
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--csv" || arg == "--verify" || arg == "--dump" ||
            arg == "--emit-csv" || arg == "--replay") {
            mode = arg;
            input = value(arg.c_str());
        } else if (arg == "--generate") {
            mode = arg;
            spec = value("--generate");
        } else if (arg == "-o" || arg == "--output") {
            output = value("-o");
        } else if (arg == "--chunk") {
            chunk_capacity = static_cast<std::uint32_t>(
                parseU64("--chunk", value("--chunk")));
        } else if (arg == "--policy") {
            policy = value("--policy");
        } else if (arg == "--memory-mb") {
            memory_mb = parseF64("--memory-mb", value("--memory-mb"));
        } else {
            usage(argv[0]);
        }
    }
    if (mode.empty())
        usage(argv[0]);

    try {
        if (mode == "--csv") {
            if (output.empty())
                usage(argv[0]);
            // readTrace reports malformed rows with 1-based line
            // numbers; surface its message verbatim.
            const Trace trace = loadTraceFile(input);
            TraceSource source(trace);
            return compileSource(source, output, chunk_capacity);
        }
        if (mode == "--generate") {
            if (output.empty())
                usage(argv[0]);
            const std::unique_ptr<InvocationSource> source =
                makeGeneratedSource(spec);
            return compileSource(*source, output, chunk_capacity);
        }
        if (mode == "--verify")
            return verifyFile(input);
        if (mode == "--dump")
            return dumpFile(input);
        if (mode == "--emit-csv") {
            if (output.empty())
                usage(argv[0]);
            return emitCsv(input, output);
        }
        if (mode == "--replay")
            return replayFile(input, policy, memory_mb);
    } catch (const std::exception& error) {
        die(error.what());
    }
    usage(argv[0]);
}

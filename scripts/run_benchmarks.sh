#!/usr/bin/env bash
# Perf-regression harness driver (PR 5 pool rebuild, PR 7 platform
# rebuild, PR 9 streaming trace substrate).
#
# Full mode (default) regenerates the committed baselines:
#   scripts/run_benchmarks.sh [build-dir]
#     -> runs build/bench/perf_harness --reps 3 --out BENCH_PR7.json
#     -> runs build/bench/fig_stream_replay --out BENCH_PR9.json
#
# Smoke mode is the CI gate:
#   scripts/run_benchmarks.sh --smoke [build-dir]
#     -> runs a reduced-size harness pass and compares each bench's
#        slab/reference *speedup ratio* against the committed
#        BENCH_PR7.json. The ratio is machine-speed-invariant (the
#        reference backend is the pre-PR data structure, timed in the
#        same process), so a slower CI box cancels out and only a real
#        relative regression trips the gate.
#     -> runs a reduced fig_stream_replay pass and asserts the PR 9
#        memory contract: streamed peak RSS on the oversized (>= 10x)
#        trace stays within RSS_FLATNESS_MAX (default 1.1) x the small
#        streamed replay's peak RSS. The ratio is trace-length
#        flatness, so it is machine- and mode-invariant.
#
# A bench regresses when its smoke speedup drops below
# (1 - TOLERANCE) x the baseline speedup. Benches present only in the
# full baseline (the 100k-container sizes are skipped in smoke) are
# ignored. TOLERANCE defaults to 0.25 and can be overridden via env.
set -u

ROOT=$(cd "$(dirname "$0")/.." && pwd)
SMOKE=0
if [ "${1:-}" = "--smoke" ]; then
    SMOKE=1
    shift
fi
BUILD_DIR=${1:-"$ROOT/build"}
HARNESS="$BUILD_DIR/bench/perf_harness"
STREAM_HARNESS="$BUILD_DIR/bench/fig_stream_replay"
BASELINE="$ROOT/BENCH_PR7.json"
STREAM_BASELINE="$ROOT/BENCH_PR9.json"
TOLERANCE=${TOLERANCE:-0.25}
RSS_FLATNESS_MAX=${RSS_FLATNESS_MAX:-1.1}

if [ ! -x "$HARNESS" ] || [ ! -x "$STREAM_HARNESS" ]; then
    echo "run_benchmarks: $HARNESS or $STREAM_HARNESS missing; build first:" >&2
    echo "  cmake -B build -S . && cmake --build build --target perf_harness fig_stream_replay" >&2
    exit 2
fi

check_rss_flatness() {
    python3 - "$1" "$RSS_FLATNESS_MAX" <<'EOF'
import json
import sys

path, ceiling = sys.argv[1], float(sys.argv[2])
with open(path) as f:
    report = json.load(f)
flatness = report["rss_flatness_streamed_oversized_vs_small"]
rows = {b["name"]: b for b in report["benches"]}
small = rows["fig6_sim_small"]
big = rows["oversized_sim"]
scale = big["invocations"] / max(1, small["invocations"])
print(f"stream replay: oversized trace is {scale:.1f}x the small one")
print(f"stream replay: streamed peak RSS {small['streamed']['peak_rss_mb']:.1f} MB"
      f" (small) -> {big['streamed']['peak_rss_mb']:.1f} MB (oversized),"
      f" flatness {flatness:.3f}x (ceiling {ceiling}x)")
if scale < 10.0:
    print("run_benchmarks: oversized trace is under 10x", file=sys.stderr)
    sys.exit(1)
if not small["streamed"]["rss_resettable"]:
    print("run_benchmarks: VmHWM reset unavailable; RSS gate skipped")
    sys.exit(0)
if flatness > ceiling:
    print(f"run_benchmarks: streamed RSS is not flat ({flatness:.3f}x)",
          file=sys.stderr)
    sys.exit(1)
print("run_benchmarks: streamed RSS flat across trace length")
EOF
}

if [ "$SMOKE" -eq 0 ]; then
    "$HARNESS" --reps 3 --out "$BASELINE" || exit 1
    "$STREAM_HARNESS" --out "$STREAM_BASELINE" || exit 1
    check_rss_flatness "$STREAM_BASELINE" || exit 1
    exit 0
fi

if [ ! -f "$BASELINE" ]; then
    echo "run_benchmarks: baseline $BASELINE missing;" \
         "run scripts/run_benchmarks.sh (full mode) and commit it" >&2
    exit 2
fi

SMOKE_OUT=$(mktemp /tmp/bench_pr7_smoke.XXXXXX.json)
STREAM_SMOKE_OUT=$(mktemp /tmp/bench_pr9_smoke.XXXXXX.json)
trap 'rm -f "$SMOKE_OUT" "$STREAM_SMOKE_OUT"' EXIT

"$STREAM_HARNESS" --smoke --out "$STREAM_SMOKE_OUT" || exit 1
check_rss_flatness "$STREAM_SMOKE_OUT" || exit 1

"$HARNESS" --smoke --reps 2 --out "$SMOKE_OUT" || exit 1

python3 - "$BASELINE" "$SMOKE_OUT" "$TOLERANCE" <<'EOF'
import json
import sys

baseline_path, smoke_path, tolerance = sys.argv[1], sys.argv[2], float(sys.argv[3])
with open(baseline_path) as f:
    baseline = {b["name"]: b for b in json.load(f)["benches"]}
with open(smoke_path) as f:
    smoke = {b["name"]: b for b in json.load(f)["benches"]}

failed = []
print(f"{'bench':<22} {'baseline':>9} {'smoke':>9} {'floor':>9}")
for name, base in baseline.items():
    if name not in smoke:
        print(f"{name:<22} {base['speedup']:>8.2f}x {'-':>9} {'-':>9}  (full-only, skipped)")
        continue
    got = smoke[name]["speedup"]
    floor = base["speedup"] * (1.0 - tolerance)
    verdict = "ok" if got >= floor else "REGRESSED"
    print(f"{name:<22} {base['speedup']:>8.2f}x {got:>8.2f}x {floor:>8.2f}x  {verdict}")
    if got < floor:
        failed.append(name)

if failed:
    print(f"\nrun_benchmarks: perf regression in: {', '.join(failed)}", file=sys.stderr)
    sys.exit(1)
print("\nrun_benchmarks: no perf regression")
EOF

#!/usr/bin/env bash
# Perf-regression harness driver (PR 5 pool rebuild, PR 7 platform rebuild).
#
# Full mode (default) regenerates the committed baseline:
#   scripts/run_benchmarks.sh [build-dir]
#     -> runs build/bench/perf_harness --reps 3 --out BENCH_PR7.json
#
# Smoke mode is the CI gate:
#   scripts/run_benchmarks.sh --smoke [build-dir]
#     -> runs a reduced-size harness pass and compares each bench's
#        slab/reference *speedup ratio* against the committed
#        BENCH_PR7.json. The ratio is machine-speed-invariant (the
#        reference backend is the pre-PR data structure, timed in the
#        same process), so a slower CI box cancels out and only a real
#        relative regression trips the gate.
#
# A bench regresses when its smoke speedup drops below
# (1 - TOLERANCE) x the baseline speedup. Benches present only in the
# full baseline (the 100k-container sizes are skipped in smoke) are
# ignored. TOLERANCE defaults to 0.25 and can be overridden via env.
set -u

ROOT=$(cd "$(dirname "$0")/.." && pwd)
SMOKE=0
if [ "${1:-}" = "--smoke" ]; then
    SMOKE=1
    shift
fi
BUILD_DIR=${1:-"$ROOT/build"}
HARNESS="$BUILD_DIR/bench/perf_harness"
BASELINE="$ROOT/BENCH_PR7.json"
TOLERANCE=${TOLERANCE:-0.25}

if [ ! -x "$HARNESS" ]; then
    echo "run_benchmarks: $HARNESS missing; build it first:" >&2
    echo "  cmake -B build -S . && cmake --build build --target perf_harness" >&2
    exit 2
fi

if [ "$SMOKE" -eq 0 ]; then
    exec "$HARNESS" --reps 3 --out "$BASELINE"
fi

if [ ! -f "$BASELINE" ]; then
    echo "run_benchmarks: baseline $BASELINE missing;" \
         "run scripts/run_benchmarks.sh (full mode) and commit it" >&2
    exit 2
fi

SMOKE_OUT=$(mktemp /tmp/bench_pr7_smoke.XXXXXX.json)
trap 'rm -f "$SMOKE_OUT"' EXIT

"$HARNESS" --smoke --reps 2 --out "$SMOKE_OUT" || exit 1

python3 - "$BASELINE" "$SMOKE_OUT" "$TOLERANCE" <<'EOF'
import json
import sys

baseline_path, smoke_path, tolerance = sys.argv[1], sys.argv[2], float(sys.argv[3])
with open(baseline_path) as f:
    baseline = {b["name"]: b for b in json.load(f)["benches"]}
with open(smoke_path) as f:
    smoke = {b["name"]: b for b in json.load(f)["benches"]}

failed = []
print(f"{'bench':<22} {'baseline':>9} {'smoke':>9} {'floor':>9}")
for name, base in baseline.items():
    if name not in smoke:
        print(f"{name:<22} {base['speedup']:>8.2f}x {'-':>9} {'-':>9}  (full-only, skipped)")
        continue
    got = smoke[name]["speedup"]
    floor = base["speedup"] * (1.0 - tolerance)
    verdict = "ok" if got >= floor else "REGRESSED"
    print(f"{name:<22} {base['speedup']:>8.2f}x {got:>8.2f}x {floor:>8.2f}x  {verdict}")
    if got < floor:
        failed.append(name)

if failed:
    print(f"\nrun_benchmarks: perf regression in: {', '.join(failed)}", file=sys.stderr)
    sys.exit(1)
print("\nrun_benchmarks: no perf regression")
EOF

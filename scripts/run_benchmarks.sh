#!/usr/bin/env bash
# Perf-regression harness driver (PR 5 pool rebuild, PR 7 platform
# rebuild, PR 9 streaming trace substrate, PR 10 sharded cluster).
#
# Full mode (default) regenerates the committed baselines:
#   scripts/run_benchmarks.sh [build-dir]
#     -> runs build/bench/perf_harness --reps 3 --out BENCH_PR7.json
#     -> runs build/bench/fig_stream_replay --out BENCH_PR9.json
#     -> runs build/bench/fig_shard_scaling --out BENCH_PR10.json
#
# Smoke mode is the CI gate:
#   scripts/run_benchmarks.sh --smoke [build-dir]
#     -> runs a reduced-size harness pass and compares each bench's
#        slab/reference *speedup ratio* against the committed
#        BENCH_PR7.json. The ratio is machine-speed-invariant (the
#        reference backend is the pre-PR data structure, timed in the
#        same process), so a slower CI box cancels out and only a real
#        relative regression trips the gate.
#     -> runs a reduced fig_stream_replay pass and asserts the PR 9
#        memory contract: streamed peak RSS on the oversized (>= 10x)
#        trace stays within RSS_FLATNESS_MAX (default 1.1) x the small
#        streamed replay's peak RSS. The ratio is trace-length
#        flatness, so it is machine- and mode-invariant.
#     -> runs a reduced fig_shard_scaling pass (the shard_scaling
#        phase). Byte-identity of the cluster payloads across shard
#        counts is asserted unconditionally. The wall-clock speedup
#        floor (SHARD_SPEEDUP_MIN, default 2.5x at 4 shards, minus
#        TOLERANCE) is only asserted when the machine reports >= 4
#        usable cores: shard threads cannot run in parallel on fewer,
#        so the gate would measure the box, not the code.
#
# A bench regresses when its smoke speedup drops below
# (1 - TOLERANCE) x the baseline speedup. Benches present only in the
# full baseline (the 100k-container sizes are skipped in smoke) are
# ignored. TOLERANCE defaults to 0.25 and can be overridden via env.
set -u

ROOT=$(cd "$(dirname "$0")/.." && pwd)
SMOKE=0
if [ "${1:-}" = "--smoke" ]; then
    SMOKE=1
    shift
fi
BUILD_DIR=${1:-"$ROOT/build"}
HARNESS="$BUILD_DIR/bench/perf_harness"
STREAM_HARNESS="$BUILD_DIR/bench/fig_stream_replay"
SHARD_HARNESS="$BUILD_DIR/bench/fig_shard_scaling"
BASELINE="$ROOT/BENCH_PR7.json"
STREAM_BASELINE="$ROOT/BENCH_PR9.json"
SHARD_BASELINE="$ROOT/BENCH_PR10.json"
TOLERANCE=${TOLERANCE:-0.25}
RSS_FLATNESS_MAX=${RSS_FLATNESS_MAX:-1.1}
SHARD_SPEEDUP_MIN=${SHARD_SPEEDUP_MIN:-2.5}

if [ ! -x "$HARNESS" ] || [ ! -x "$STREAM_HARNESS" ] || [ ! -x "$SHARD_HARNESS" ]; then
    echo "run_benchmarks: $HARNESS, $STREAM_HARNESS, or $SHARD_HARNESS missing; build first:" >&2
    echo "  cmake -B build -S . && cmake --build build --target perf_harness fig_stream_replay fig_shard_scaling" >&2
    exit 2
fi

check_rss_flatness() {
    python3 - "$1" "$RSS_FLATNESS_MAX" <<'EOF'
import json
import sys

path, ceiling = sys.argv[1], float(sys.argv[2])
with open(path) as f:
    report = json.load(f)
flatness = report["rss_flatness_streamed_oversized_vs_small"]
rows = {b["name"]: b for b in report["benches"]}
small = rows["fig6_sim_small"]
big = rows["oversized_sim"]
scale = big["invocations"] / max(1, small["invocations"])
print(f"stream replay: oversized trace is {scale:.1f}x the small one")
print(f"stream replay: streamed peak RSS {small['streamed']['peak_rss_mb']:.1f} MB"
      f" (small) -> {big['streamed']['peak_rss_mb']:.1f} MB (oversized),"
      f" flatness {flatness:.3f}x (ceiling {ceiling}x)")
if scale < 10.0:
    print("run_benchmarks: oversized trace is under 10x", file=sys.stderr)
    sys.exit(1)
if not small["streamed"]["rss_resettable"]:
    print("run_benchmarks: VmHWM reset unavailable; RSS gate skipped")
    sys.exit(0)
if flatness > ceiling:
    print(f"run_benchmarks: streamed RSS is not flat ({flatness:.3f}x)",
          file=sys.stderr)
    sys.exit(1)
print("run_benchmarks: streamed RSS flat across trace length")
EOF
}

check_shard_scaling() {
    python3 - "$1" "$SHARD_SPEEDUP_MIN" "$TOLERANCE" <<'EOF'
import json
import sys

path, speedup_min, tolerance = sys.argv[1], float(sys.argv[2]), float(sys.argv[3])
with open(path) as f:
    report = json.load(f)
rows = {r["shards"]: r for r in report["rows"]}
cores = report["available_cores"]
for r in report["rows"]:
    print(f"shard scaling: shards={r['shards']} wall {r['wall_s']:.2f}s"
          f" peak rss {r['peak_rss_mb']:.1f} MB"
          f" speedup {r['speedup_vs_1']:.2f}x")
if not report["identical_payloads"]:
    print("run_benchmarks: shard scaling payloads differ across shard"
          " counts (determinism regression)", file=sys.stderr)
    sys.exit(1)
print("shard scaling: payloads byte-identical across shard counts")
if cores < 4 or 4 not in rows:
    print(f"run_benchmarks: speedup gate skipped ({cores} usable core(s);"
          " need >= 4 to run shard threads in parallel)")
    sys.exit(0)
floor = speedup_min * (1.0 - tolerance)
got = rows[4]["speedup_vs_1"]
print(f"shard scaling: 4-shard speedup {got:.2f}x (floor {floor:.2f}x)")
if got < floor:
    print(f"run_benchmarks: shard scaling regressed ({got:.2f}x < {floor:.2f}x)",
          file=sys.stderr)
    sys.exit(1)
print("run_benchmarks: shard scaling within tolerance")
EOF
}

if [ "$SMOKE" -eq 0 ]; then
    "$HARNESS" --reps 3 --out "$BASELINE" || exit 1
    "$STREAM_HARNESS" --out "$STREAM_BASELINE" || exit 1
    check_rss_flatness "$STREAM_BASELINE" || exit 1
    "$SHARD_HARNESS" --out "$SHARD_BASELINE" || exit 1
    check_shard_scaling "$SHARD_BASELINE" || exit 1
    exit 0
fi

if [ ! -f "$BASELINE" ]; then
    echo "run_benchmarks: baseline $BASELINE missing;" \
         "run scripts/run_benchmarks.sh (full mode) and commit it" >&2
    exit 2
fi

SMOKE_OUT=$(mktemp /tmp/bench_pr7_smoke.XXXXXX.json)
STREAM_SMOKE_OUT=$(mktemp /tmp/bench_pr9_smoke.XXXXXX.json)
SHARD_SMOKE_OUT=$(mktemp /tmp/bench_pr10_smoke.XXXXXX.json)
trap 'rm -f "$SMOKE_OUT" "$STREAM_SMOKE_OUT" "$SHARD_SMOKE_OUT"' EXIT

"$STREAM_HARNESS" --smoke --out "$STREAM_SMOKE_OUT" || exit 1
check_rss_flatness "$STREAM_SMOKE_OUT" || exit 1

"$SHARD_HARNESS" --smoke --out "$SHARD_SMOKE_OUT" || exit 1
check_shard_scaling "$SHARD_SMOKE_OUT" || exit 1

"$HARNESS" --smoke --reps 2 --out "$SMOKE_OUT" || exit 1

python3 - "$BASELINE" "$SMOKE_OUT" "$TOLERANCE" <<'EOF'
import json
import sys

baseline_path, smoke_path, tolerance = sys.argv[1], sys.argv[2], float(sys.argv[3])
with open(baseline_path) as f:
    baseline = {b["name"]: b for b in json.load(f)["benches"]}
with open(smoke_path) as f:
    smoke = {b["name"]: b for b in json.load(f)["benches"]}

failed = []
print(f"{'bench':<22} {'baseline':>9} {'smoke':>9} {'floor':>9}")
for name, base in baseline.items():
    if name not in smoke:
        print(f"{name:<22} {base['speedup']:>8.2f}x {'-':>9} {'-':>9}  (full-only, skipped)")
        continue
    got = smoke[name]["speedup"]
    floor = base["speedup"] * (1.0 - tolerance)
    verdict = "ok" if got >= floor else "REGRESSED"
    print(f"{name:<22} {base['speedup']:>8.2f}x {got:>8.2f}x {floor:>8.2f}x  {verdict}")
    if got < floor:
        failed.append(name)

if failed:
    print(f"\nrun_benchmarks: perf regression in: {', '.join(failed)}", file=sys.stderr)
    sys.exit(1)
print("\nrun_benchmarks: no perf regression")
EOF

#!/usr/bin/env bash
# clang-tidy gate (readability / bugprone / performance; see .clang-tidy).
#
# Scope: the shared event engine (src/engine/), the core hot path
# (src/core/), the trace substrate (src/trace/ — the .ftrace
# mmap reader parses untrusted bytes, so it stays permanently in
# scope), and the sharded cluster engine (src/platform/cluster_shard.cc
# — barrier/mailbox concurrency deserves standing static analysis),
# plus the sources this branch touches relative to the merge base —
# the files a PR is responsible for — instead of the whole tree, so
# the gate stays fast and PRs are not penalized for pre-existing
# findings elsewhere.
#
# Usage: run_clang_tidy.sh [build-dir] [base-ref]
#   build-dir  CMake build directory with compile_commands.json
#              (default: build)
#   base-ref   Git ref to diff against for the touched-file list
#              (default: origin/main, falling back to HEAD~1, falling
#              back to engine-only scope)
#
# Degrades gracefully: exits 0 with a notice when clang-tidy is not
# installed (developer machines); CI installs it and enforces findings.
set -u

ROOT=$(cd "$(dirname "$0")/.." && pwd)
BUILD_DIR=${1:-"$ROOT/build"}
BASE_REF=${2:-origin/main}

if ! command -v clang-tidy >/dev/null 2>&1; then
    echo "run_clang_tidy: clang-tidy not installed; skipping (CI runs it)"
    exit 0
fi

if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
    echo "run_clang_tidy: $BUILD_DIR/compile_commands.json missing;" \
         "configure with cmake first (CMAKE_EXPORT_COMPILE_COMMANDS is on)" >&2
    exit 2
fi

cd "$ROOT"

# The engine, the core hot path (slab pool, policies), the trace
# substrate (.ftrace parsing of untrusted bytes), and the sharded
# cluster engine (cross-thread barrier/mailbox protocol) are always in
# scope; add the branch's touched C++ sources.
FILES=$(ls src/engine/*.cc src/core/*.cc src/trace/*.cc \
           src/platform/cluster_shard.cc 2>/dev/null)
if git rev-parse --verify --quiet "$BASE_REF" >/dev/null; then
    DIFF_BASE=$BASE_REF
elif git rev-parse --verify --quiet HEAD~1 >/dev/null; then
    DIFF_BASE=HEAD~1
else
    DIFF_BASE=""
fi
if [ -n "$DIFF_BASE" ]; then
    TOUCHED=$(git diff --name-only --diff-filter=d "$DIFF_BASE" -- \
                  'src/*.cc' 'bench/*.cc' 'tests/*.cc')
    FILES=$(printf '%s\n%s\n' "$FILES" "$TOUCHED" | sort -u | sed '/^$/d')
fi

if [ -z "$FILES" ]; then
    echo "run_clang_tidy: nothing in scope"
    exit 0
fi

echo "run_clang_tidy: checking:"
echo "$FILES" | sed 's/^/  /'

STATUS=0
for f in $FILES; do
    [ -f "$f" ] || continue
    clang-tidy -p "$BUILD_DIR" --quiet "$f" || STATUS=1
done
exit $STATUS

#!/usr/bin/env bash
# Kill-and-resume smoke test for the crash-safe sweep engine.
#
# Runs a checkpointing bench to completion for a reference output, then
# starts the same sweep again, SIGKILLs it once at least one cell has
# been journaled, resumes from the checkpoint, and requires the resumed
# run's stdout to be byte-identical to the uninterrupted reference.
#
# Usage: kill_resume_smoke.sh [<bench-binary> [bench args...]]
# Example: kill_resume_smoke.sh build/bench/fig6_cold_starts --jobs 2
#
# With no arguments, smokes one bench per checkpoint flavour: a
# SimResult sweep (fig6_cold_starts) and a PlatformResult sweep
# (fig7_skewed_workloads), both from ./build/bench.
set -u

smoke_one() {
    local bench=$1
    shift

    local work
    work=$(mktemp -d)
    local ckpt=$work/sweep.ckpt

    echo "=== $bench $*"
    echo "== reference run (uninterrupted, checkpointing)"
    "$bench" "$@" --ckpt "$ckpt" > "$work/reference.out" || {
        echo "FAIL: reference run exited non-zero" >&2
        rm -rf "$work"
        return 1
    }
    local total
    total=$(grep -c '^cell ' "$ckpt")
    echo "   $total cells journaled"

    echo "== interrupted run (SIGKILL once a cell is journaled)"
    rm -f "$ckpt"
    "$bench" "$@" --ckpt "$ckpt" > "$work/killed.out" 2> "$work/killed.err" &
    local pid=$!

    # Wait (up to ~30 s) for the journal to hold at least one record,
    # then SIGKILL mid-sweep. If the bench wins the race and finishes
    # first, the resume below still has to reproduce the reference
    # byte-for-byte.
    for _ in $(seq 1 300); do
        if ! kill -0 "$pid" 2>/dev/null; then
            break
        fi
        if [ -f "$ckpt" ] && [ "$(grep -c '^cell ' "$ckpt" 2>/dev/null)" -ge 1 ]; then
            kill -9 "$pid" 2>/dev/null
            break
        fi
        sleep 0.1
    done
    wait "$pid" 2>/dev/null
    local done_cells
    done_cells=$(grep -c '^cell ' "$ckpt" 2>/dev/null || echo 0)
    echo "   killed with $done_cells of $total cells journaled"

    echo "== resumed run"
    "$bench" "$@" --ckpt "$ckpt" --resume > "$work/resumed.out" 2> "$work/resumed.err" || {
        echo "FAIL: resumed run exited non-zero" >&2
        cat "$work/resumed.err" >&2
        rm -rf "$work"
        return 1
    }

    if ! cmp -s "$work/reference.out" "$work/resumed.out"; then
        echo "FAIL: resumed output differs from the uninterrupted run" >&2
        diff "$work/reference.out" "$work/resumed.out" | head -40 >&2
        rm -rf "$work"
        return 1
    fi
    echo "PASS: resumed output is byte-identical to the uninterrupted run"
    rm -rf "$work"
    return 0
}

if [ $# -ge 1 ]; then
    smoke_one "$@"
    exit $?
fi

# Default: one sim-sweep bench (in both trace shapes: materialized,
# then --streamed mmap-backed .ftrace cells whose portable workload
# fingerprint must survive the SIGKILL/resume cycle), two
# platform-sweep benches (fig7, plus fig8 whose overloaded single
# invoker exercises the dense platform hot path under checkpointing),
# and one cluster-sweep bench (fig_overload, whose cells carry the
# overload counters), so every checkpoint flavour gets the SIGKILL
# treatment. The fig_overload sweep runs twice: single-threaded legacy
# cells, then --shards 4 cells through the windowed sharded engine,
# whose payloads must survive the SIGKILL/resume cycle byte-for-byte.
ROOT=$(cd "$(dirname "$0")/.." && pwd)
STATUS=0
smoke_one "$ROOT/build/bench/fig6_cold_starts" --jobs 2 || STATUS=1
smoke_one "$ROOT/build/bench/fig6_cold_starts" --streamed --jobs 2 || STATUS=1
smoke_one "$ROOT/build/bench/fig7_skewed_workloads" --jobs 2 || STATUS=1
smoke_one "$ROOT/build/bench/fig8_server_load" --jobs 2 || STATUS=1
smoke_one "$ROOT/build/bench/fig_overload" --smoke --jobs 2 || STATUS=1
smoke_one "$ROOT/build/bench/fig_overload" --smoke --jobs 2 --shards 4 || STATUS=1
exit $STATUS

#!/usr/bin/env bash
# Kill-and-resume smoke test for the crash-safe sweep engine.
#
# Runs a checkpointing bench to completion for a reference output, then
# starts the same sweep again, SIGKILLs it once at least one cell has
# been journaled, resumes from the checkpoint, and requires the resumed
# run's stdout to be byte-identical to the uninterrupted reference.
#
# Usage: kill_resume_smoke.sh <bench-binary> [bench args...]
# Example: kill_resume_smoke.sh build/bench/fig6_cold_starts --jobs 2
set -u

if [ $# -lt 1 ]; then
    echo "usage: $0 <bench-binary> [bench args...]" >&2
    exit 2
fi
BENCH=$1
shift

WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT
CKPT=$WORK/sweep.ckpt

echo "== reference run (uninterrupted, checkpointing)"
"$BENCH" "$@" --ckpt "$CKPT" > "$WORK/reference.out" || {
    echo "FAIL: reference run exited non-zero" >&2
    exit 1
}
TOTAL=$(grep -c '^cell ' "$CKPT")
echo "   $TOTAL cells journaled"

echo "== interrupted run (SIGKILL once a cell is journaled)"
rm -f "$CKPT"
"$BENCH" "$@" --ckpt "$CKPT" > "$WORK/killed.out" 2> "$WORK/killed.err" &
PID=$!

# Wait (up to ~30 s) for the journal to hold at least one record, then
# SIGKILL mid-sweep. If the bench wins the race and finishes first, the
# resume below still has to reproduce the reference byte-for-byte.
for _ in $(seq 1 300); do
    if ! kill -0 "$PID" 2>/dev/null; then
        break
    fi
    if [ -f "$CKPT" ] && [ "$(grep -c '^cell ' "$CKPT" 2>/dev/null)" -ge 1 ]; then
        kill -9 "$PID" 2>/dev/null
        break
    fi
    sleep 0.1
done
wait "$PID" 2>/dev/null
DONE=$(grep -c '^cell ' "$CKPT" 2>/dev/null || echo 0)
echo "   killed with $DONE of $TOTAL cells journaled"

echo "== resumed run"
"$BENCH" "$@" --ckpt "$CKPT" --resume > "$WORK/resumed.out" 2> "$WORK/resumed.err" || {
    echo "FAIL: resumed run exited non-zero" >&2
    cat "$WORK/resumed.err" >&2
    exit 1
}

if ! cmp -s "$WORK/reference.out" "$WORK/resumed.out"; then
    echo "FAIL: resumed output differs from the uninterrupted run" >&2
    diff "$WORK/reference.out" "$WORK/resumed.out" | head -40 >&2
    exit 1
fi
echo "PASS: resumed output is byte-identical to the uninterrupted run"
